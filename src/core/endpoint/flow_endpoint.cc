#include "core/endpoint/flow_endpoint.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/logging.h"

namespace dfi {

// ---------------------------------------------------------------------------
// FlowEndpoint
// ---------------------------------------------------------------------------

FlowEndpoint::FlowEndpoint(ChannelMatrix* matrix, uint32_t source_index,
                           rdma::RdmaContext* source_ctx,
                           VirtualClock* clock)
    : tuple_size_(matrix->tuple_size()) {
  const uint32_t m = matrix->num_targets();
  channels_.reserve(m);
  for (uint32_t t = 0; t < m; ++t) {
    channels_.push_back(std::make_unique<ChannelSource>(
        matrix->channel(source_index, t), source_ctx, clock));
  }
  batch_cursors_.resize(m);
}

Status FlowEndpoint::Push(const void* tuple, Partitioner* partitioner) {
  const uint32_t target =
      partitioner->Route(static_cast<const uint8_t*>(tuple));
  if (target >= num_targets()) {
    return Status::OutOfRange("routing function returned target " +
                              std::to_string(target) + " of " +
                              std::to_string(num_targets()));
  }
  return channels_[target]->Push(tuple, tuple_size_);
}

Status FlowEndpoint::PushTo(const void* tuple, uint32_t target_index) {
  if (target_index >= num_targets()) {
    return Status::OutOfRange("target index " +
                              std::to_string(target_index));
  }
  return channels_[target_index]->Push(tuple, tuple_size_);
}

Status FlowEndpoint::PushAdaptive(const void* tuple,
                                  AdaptivePartitioner* router) {
  const AdaptivePartitioner::Decision d =
      router->Route(static_cast<const uint8_t*>(tuple));
  if (d.flush_first >= 0) {
    DFI_RETURN_IF_ERROR(
        channels_[static_cast<uint32_t>(d.flush_first)]->Flush());
  }
  if (d.target >= num_targets()) {
    return Status::OutOfRange("adaptive routing returned target " +
                              std::to_string(d.target) + " of " +
                              std::to_string(num_targets()));
  }
  return channels_[d.target]->Push(tuple, tuple_size_);
}

Status FlowEndpoint::PushBatchAdaptive(const void* tuples, size_t count,
                                       AdaptivePartitioner* router) {
  const uint8_t* base = static_cast<const uint8_t*>(tuples);
  for (size_t i = 0; i < count; ++i) {
    DFI_RETURN_IF_ERROR(PushAdaptive(base + i * tuple_size_, router));
  }
  return Status::OK();
}

Status FlowEndpoint::AppendRun(uint32_t target, const uint8_t* run,
                               size_t n) {
  ChannelSource& ch = *channels_[target];
  const uint32_t ts = tuple_size_;
  while (n > 0) {
    uint32_t granted = 0;
    uint8_t* dst = nullptr;
    DFI_RETURN_IF_ERROR(ch.ReserveTuples(
        static_cast<uint32_t>(std::min<size_t>(n, UINT32_MAX)), &granted,
        &dst));
    DFI_CHECK_GT(granted, 0u);
    std::memcpy(dst, run, static_cast<size_t>(granted) * ts);
    DFI_RETURN_IF_ERROR(ch.CommitTuples(granted));
    run += static_cast<size_t>(granted) * ts;
    n -= granted;
  }
  return Status::OK();
}

Status FlowEndpoint::PushBatch(const void* tuples, size_t count,
                               Partitioner* partitioner) {
  if (count == 0) return Status::OK();
  if (count > UINT32_MAX) {
    return Status::InvalidArgument("batch too large; split it");
  }
  const uint8_t* base = static_cast<const uint8_t*>(tuples);
  const uint32_t ts = tuple_size_;
  const uint32_t m = num_targets();
  if (m == 1 || partitioner->kind() == Partitioner::Kind::kSingle) {
    // Degenerate partitioning: the whole run goes to target 0 as wide
    // copies, no per-tuple work at all.
    return AppendRun(0, base, count);
  }

  // One fused sweep: partition each tuple (devirtualized for the builtin
  // partitioners — the only indirect call left is this function itself)
  // and copy it straight into its channel's open reservation. Per-tuple
  // Push order per target is preserved because tuples are emitted in batch
  // order.
  for (auto& cur : batch_cursors_) cur = BatchCursor{};
  Status status;
  // Commits whatever `cur` wrote into its open reservation (transmitting
  // the now full segment) and opens the next one.
  auto refill = [&](BatchCursor& cur, uint32_t target) {
    ChannelSource& ch = *channels_[target];
    if (cur.dst != cur.start) {
      status = ch.CommitTuples(
          static_cast<uint32_t>((cur.dst - cur.start) / ts));
      if (!status.ok()) return false;
    }
    uint32_t granted = 0;
    status = ch.ReserveTuples(UINT32_MAX, &granted, &cur.start);
    if (!status.ok()) return false;
    DFI_CHECK_GT(granted, 0u);
    cur.dst = cur.start;
    cur.end = cur.start + static_cast<size_t>(granted) * ts;
    return true;
  };
  auto emit = [&](uint32_t target, const uint8_t* tuple) {
    BatchCursor& cur = batch_cursors_[target];
    if (cur.dst == cur.end && !refill(cur, target)) return false;
    if (ts == 8) {
      // Dominant case (8-byte tuples): a single load/store pair.
      std::memcpy(cur.dst, tuple, 8);
    } else {
      std::memcpy(cur.dst, tuple, ts);
    }
    cur.dst += ts;
    return true;
  };

  switch (partitioner->kind()) {
    case Partitioner::Kind::kKeyHash: {
      const size_t off = partitioner->key_offset();
      const size_t key_size = partitioner->key_size();
      const FastDivisor& target_mod = partitioner->mod();
      // Two-pass blocks: a tight partition loop (vectorizable hash, then
      // magic-number modulo) followed by the scatter; splitting the passes
      // keeps the hash chain and the copy chain independently pipelined.
      constexpr size_t kBlock = 512;
      const uint8_t* p = base;
      if (ts == 8 && off == 0 && key_size == 8) {
        // Dominant case — the tuple IS an 8-byte key: the hash pass runs
        // over a dense u64 run (SIMD via HashKeys8), the modulo reduces to
        // a mask when num_targets is a power of two, and the scatter is a
        // fixed-width load/store pair per tuple.
        uint64_t h[kBlock];
        const bool pow2 = target_mod.pow2();
        const uint64_t mask = target_mod.mask();
        for (size_t done = 0; done < count;) {
          const size_t n = std::min(kBlock, count - done);
          HashKeys8(p, n, h);
          for (size_t j = 0; j < n; ++j, p += 8) {
            const uint32_t target = static_cast<uint32_t>(
                pow2 ? (h[j] & mask) : target_mod.Mod(h[j]));
            BatchCursor& cur = batch_cursors_[target];
            if (cur.dst == cur.end && !refill(cur, target)) return status;
            std::memcpy(cur.dst, p, 8);
            cur.dst += 8;
          }
          done += n;
        }
        break;
      }
      uint32_t tgt[kBlock];
      for (size_t done = 0; done < count;) {
        const size_t n = std::min(kBlock, count - done);
        const uint8_t* q = p + off;
        if (key_size == 8) {
          // 8-byte keys load directly (arbitrary stride / offset).
          for (size_t j = 0; j < n; ++j, q += ts) {
            uint64_t k;
            std::memcpy(&k, q, 8);
            tgt[j] = static_cast<uint32_t>(target_mod.Mod(HashU64(k)));
          }
        } else {
          for (size_t j = 0; j < n; ++j, q += ts) {
            tgt[j] = static_cast<uint32_t>(
                target_mod.Mod(HashU64(ReadKeyBytes(q, key_size))));
          }
        }
        for (size_t j = 0; j < n; ++j, p += ts) {
          if (!emit(tgt[j], p)) return status;
        }
        done += n;
      }
      break;
    }
    case Partitioner::Kind::kRadix: {
      const size_t off = partitioner->key_offset();
      const size_t key_size = partitioner->key_size();
      const uint32_t shift = partitioner->shift();
      const uint32_t bits = partitioner->bits();
      const uint8_t* p = base;
      for (size_t i = 0; i < count; ++i, p += ts) {
        const uint32_t part =
            RadixBits(ReadKeyBytes(p + off, key_size), shift, bits);
        DFI_DCHECK(part < m);
        if (part >= m) {
          return Status::OutOfRange("routing function returned target " +
                                    std::to_string(part) + " of " +
                                    std::to_string(m));
        }
        if (!emit(part, p)) return status;
      }
      break;
    }
    default: {  // kRoundRobin / kGeneric
      const uint8_t* p = base;
      for (size_t i = 0; i < count; ++i, p += ts) {
        const uint32_t target = partitioner->Route(p);
        if (target >= m) {
          return Status::OutOfRange("routing function returned target " +
                                    std::to_string(target) + " of " +
                                    std::to_string(m));
        }
        if (!emit(target, p)) return status;
      }
      break;
    }
  }

  // Commit the partial tail reservations of every touched target.
  for (uint32_t t = 0; t < m; ++t) {
    const BatchCursor& cur = batch_cursors_[t];
    if (cur.dst != cur.start) {
      DFI_RETURN_IF_ERROR(channels_[t]->CommitTuples(
          static_cast<uint32_t>((cur.dst - cur.start) / ts)));
    }
  }
  return Status::OK();
}

Status FlowEndpoint::BroadcastSegment(uint8_t* staged_slot, uint32_t fill,
                                      bool end) {
  for (auto& ch : channels_) {
    DFI_RETURN_IF_ERROR(ch->PushSegment(staged_slot, fill, end));
  }
  return Status::OK();
}

Status FlowEndpoint::Flush() {
  for (auto& ch : channels_) {
    DFI_RETURN_IF_ERROR(ch->Flush());
  }
  return Status::OK();
}

Status FlowEndpoint::Close() {
  Status first;
  for (auto& ch : channels_) {
    Status s = ch->Close();
    if (first.ok() && !s.ok()) first = std::move(s);
  }
  return first;
}

void FlowEndpoint::Abort(const Status& cause) {
  for (auto& ch : channels_) ch->Abort(cause);
}

// ---------------------------------------------------------------------------
// FanoutEndpoint
// ---------------------------------------------------------------------------

FanoutEndpoint::FanoutEndpoint(rdma::RdmaContext* ctx,
                               const FlowOptions& options,
                               uint32_t payload_capacity,
                               const net::SimConfig* config,
                               const AbortLatch* flow_abort,
                               VirtualClock* clock)
    : clock_(clock),
      config_(config),
      options_(options),
      flow_abort_(flow_abort) {
  const uint32_t staging_slots =
      options_.optimization == FlowOptimization::kLatency
          ? 1
          : std::max(2u, options_.source_segments);
  staging_mr_ = ctx->AllocateRegion(
      static_cast<size_t>(payload_capacity + sizeof(SegmentFooter)) *
      staging_slots);
  staging_ = SegmentRing(staging_mr_->addr(), payload_capacity,
                         staging_slots);
}

FanoutEndpoint::~FanoutEndpoint() = default;

Status FanoutEndpoint::Push(const void* tuple, uint32_t len) {
  if (closed_) {
    return Status::FailedPrecondition("push on closed replicate source");
  }
  if (flow_abort_ != nullptr && flow_abort_->tripped()) {
    return flow_abort_->status();
  }
  // The tuple is staged once regardless of target count; replication
  // happens in the NIC (naive: parallel writes) or in the switch
  // (multicast) — see paper section 6.1.2.
  clock_->Advance(config_->tuple_push_fixed_ns +
                  static_cast<SimTime>(
                      std::llround(len * config_->tuple_copy_ns_per_byte)));

  if (options_.optimization == FlowOptimization::kLatency) {
    std::memcpy(staging_.payload(0), tuple, len);
    return Transmit(len, false);
  }
  const uint32_t capacity = staging_.payload_capacity();
  if (fill_ + len > capacity) {
    DFI_RETURN_IF_ERROR(Flush());
  }
  std::memcpy(staging_.payload(staging_slot_) + fill_, tuple, len);
  fill_ += len;
  if (fill_ + len > capacity) {
    DFI_RETURN_IF_ERROR(Flush());
  }
  return Status::OK();
}

Status FanoutEndpoint::Flush() {
  if (fill_ == 0) return Status::OK();
  const uint32_t fill = fill_;
  fill_ = 0;
  Status s = Transmit(fill, false);
  staging_slot_ = (staging_slot_ + 1) % staging_.num_segments();
  return s;
}

Status FanoutEndpoint::Close() {
  if (closed_) return Status::OK();
  const uint32_t fill = fill_;
  fill_ = 0;
  DFI_RETURN_IF_ERROR(Transmit(fill, true));
  closed_ = true;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// BroadcastEndpoint
// ---------------------------------------------------------------------------

BroadcastEndpoint::BroadcastEndpoint(ChannelMatrix* matrix,
                                     uint32_t source_index,
                                     rdma::RdmaContext* ctx,
                                     const net::SimConfig* config,
                                     const AbortLatch* flow_abort,
                                     VirtualClock* clock)
    : FanoutEndpoint(ctx, matrix->options(),
                     ChannelShared::PayloadCapacityFor(
                         matrix->options(), matrix->tuple_size()),
                     config, flow_abort, clock),
      fanout_(matrix, source_index, ctx, clock) {}

Status BroadcastEndpoint::Transmit(uint32_t fill, bool end) {
  return fanout_.BroadcastSegment(staging_payload(), fill, end);
}

void BroadcastEndpoint::Abort(const Status& cause) {
  MarkClosed();
  fanout_.Abort(cause);
}

}  // namespace dfi
