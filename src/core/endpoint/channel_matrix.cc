#include "core/endpoint/channel_matrix.h"

#include "common/logging.h"

namespace dfi {

ChannelMatrix::ChannelMatrix(rdma::RdmaEnv* env, const FlowOptions& options,
                             uint32_t tuple_size, uint32_t num_sources,
                             const std::vector<net::NodeId>& target_nodes)
    : options_(options),
      tuple_size_(tuple_size),
      num_sources_(num_sources),
      num_targets_(static_cast<uint32_t>(target_nodes.size())) {
  DFI_CHECK_GT(num_sources_, 0u);
  DFI_CHECK_GT(num_targets_, 0u);
  target_gates_ = std::make_unique<ReadyGate[]>(num_targets_);
  if (options_.adaptive.enabled) {
    load_board_ = std::make_unique<TargetLoadBoard>(
        num_targets_, options_.adaptive.backpressure_high,
        options_.adaptive.backpressure_low);
  }
  channels_.resize(static_cast<size_t>(num_sources_) * num_targets_);
  for (uint32_t s = 0; s < num_sources_; ++s) {
    for (uint32_t t = 0; t < num_targets_; ++t) {
      auto channel = std::make_unique<ChannelShared>(
          env->context(target_nodes[t]), options_, tuple_size_,
          static_cast<uint16_t>(s));
      channel->set_target_gate(&target_gates_[t]);
      if (load_board_ != nullptr) {
        channel->set_load_board(load_board_.get(), t);
      }
      channels_[static_cast<size_t>(s) * num_targets_ + t] =
          std::move(channel);
    }
  }
}

void ChannelMatrix::PoisonAll(const Status& cause) {
  for (auto& ch : channels_) ch->Poison(cause);
}

uint64_t ChannelMatrix::RingBytesOnNode(net::NodeId node) const {
  uint64_t bytes = 0;
  for (const auto& ch : channels_) {
    if (ch->target_node() == node) {
      bytes += ch->ring().total_bytes() + 64;  // ring + credit counter
    }
  }
  return bytes;
}

}  // namespace dfi
