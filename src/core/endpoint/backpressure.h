#ifndef DFI_CORE_ENDPOINT_BACKPRESSURE_H_
#define DFI_CORE_ENDPOINT_BACKPRESSURE_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/logging.h"

namespace dfi {

/// Per-target queue-depth signal for a channel matrix: one slot per target
/// counting segments delivered to the target's rings but not yet released
/// by a consumer, plus a hysteresis "saturated" bit (trip at >= high, clear
/// at <= low) so a target hovering around one threshold does not flap.
///
/// Producers bump a slot from ChannelSource::TransmitSegment (right where
/// the ReadyGate entry is enqueued); consumers decrement it when a segment
/// is released back to writable. Both sides touch a single relaxed atomic —
/// the signal is advisory. Nothing in the transport *acts* on it unless the
/// flow opted into `AdaptiveShuffleOptions::react_to_backpressure`; reading
/// host-schedule-dependent depths for routing decisions is what breaks
/// bit-determinism, so the default static path only ever writes the slots.
class TargetLoadBoard {
 public:
  TargetLoadBoard(uint32_t num_targets, uint32_t high, uint32_t low)
      : num_targets_(num_targets),
        high_(high),
        low_(low),
        slots_(std::make_unique<Slot[]>(num_targets)) {
    DFI_CHECK_GT(high, low);
  }

  uint32_t num_targets() const { return num_targets_; }

  /// A segment became consumable in `target`'s column.
  void OnDelivered(uint32_t target) {
    Slot& slot = slots_[target];
    const uint32_t depth =
        slot.depth.fetch_add(1, std::memory_order_relaxed) + 1;
    if (depth >= high_) {
      slot.saturated.store(true, std::memory_order_relaxed);
    }
  }

  /// A segment from `target`'s column was released back to writable.
  void OnConsumed(uint32_t target) {
    Slot& slot = slots_[target];
    const uint32_t depth =
        slot.depth.fetch_sub(1, std::memory_order_relaxed) - 1;
    if (depth <= low_) {
      slot.saturated.store(false, std::memory_order_relaxed);
    }
  }

  /// Delivered-but-unreleased segments queued at `target`.
  uint32_t depth(uint32_t target) const {
    return slots_[target].depth.load(std::memory_order_relaxed);
  }

  /// Hysteresis saturation bit: set once depth reaches `high`, cleared only
  /// once it falls back to `low`.
  bool saturated(uint32_t target) const {
    return slots_[target].saturated.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<uint32_t> depth{0};
    std::atomic<bool> saturated{false};
  };

  const uint32_t num_targets_;
  const uint32_t high_;
  const uint32_t low_;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace dfi

#endif  // DFI_CORE_ENDPOINT_BACKPRESSURE_H_
