#ifndef DFI_CORE_SCHEMA_H_
#define DFI_CORE_SCHEMA_H_

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/status.h"

namespace dfi {

/// DFI's tuple data types (paper section 4.1): each mirrors the size of the
/// corresponding C++ type under the LP64 data model. kChar fields carry an
/// application-chosen fixed length (user-defined extension point).
enum class DataType : uint8_t {
  kInt8,
  kUInt8,
  kInt16,
  kUInt16,
  kInt32,
  kUInt32,
  kInt64,
  kUInt64,
  kFloat,
  kDouble,
  kChar,  // fixed-length byte array
};

/// Size in bytes of a fixed-size type; kChar requires an explicit length.
size_t DataTypeSize(DataType type);
const char* DataTypeName(DataType type);

/// Delivery-order guarantee carried by a typed dataflow edge (paper
/// sections 4.2.2 / 5.4; DESIGN.md §14). Orderings form a total strength
/// order kNone < kPerChannel < kGlobal:
///  - kNone: content only; no order guarantee survives the edge.
///  - kPerChannel: per (source, key) FIFO — what a static shuffle or a
///    naive replicate delivers.
///  - kGlobal: one total order observed by every target (OUM; requires the
///    multicast sequencer).
enum class Ordering : uint8_t {
  kNone = 0,
  kPerChannel = 1,
  kGlobal = 2,
};

const char* OrderingName(Ordering ordering);

/// Ordering surviving a chain of stages: the weakest link wins. An operator
/// that receives kPerChannel input cannot emit kGlobal output no matter
/// what its outgoing edge provides, and a kNone edge erases any upstream
/// guarantee.
inline Ordering ComposeOrdering(Ordering upstream, Ordering edge) {
  return upstream < edge ? upstream : edge;
}

/// One attribute of a DFI schema.
struct Field {
  std::string name;
  DataType type;
  /// Only used for kChar: the fixed byte length of the attribute.
  uint32_t length = 0;
};

/// Tuple schema passed at flow initialization (paper Figure 1:
/// `DFI_Schema schema({"key", int}, {"value", int})`).
///
/// Tuple types are flow parameters fixed at init time; no type
/// interpretation happens during flow execution — attribute access is pure
/// offset computation (paper section 4.1, design point (1)). Tuples are
/// densely packed (no padding); all accesses go through memcpy-based
/// getters, so alignment is irrelevant.
class Schema {
 public:
  Schema() = default;
  /// Fails on empty schemas, duplicate names and zero-length kChar fields.
  static StatusOr<Schema> Create(std::vector<Field> fields);
  /// DFI_CHECK-ing convenience constructor for literals in examples/tests.
  Schema(std::initializer_list<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  /// Byte offset of field i within a tuple.
  size_t offset(size_t i) const { return offsets_[i]; }
  /// Byte size of field i.
  size_t field_size(size_t i) const;
  /// Total packed tuple size in bytes.
  size_t tuple_size() const { return tuple_size_; }

  /// Index of the field named `name`; NotFound otherwise.
  StatusOr<size_t> IndexOf(const std::string& name) const;

  // ---- Composition (graph-edge typing, DESIGN.md §14) ---------------------
  /// This schema plus one appended field (operator output widening, e.g. a
  /// window stage appending its window key). Fails on duplicate names.
  StatusOr<Schema> Extend(const Field& field) const;

  /// This schema with the field named `field.name` replaced by `field`
  /// (type/width change in place; offsets recomputed). NotFound when no
  /// such field exists.
  StatusOr<Schema> WithField(const Field& field) const;

  /// The named fields, in the given order (operator output narrowing).
  StatusOr<Schema> Project(const std::vector<std::string>& names) const;

  bool operator==(const Schema& other) const;

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::vector<size_t> offsets_;
  size_t tuple_size_ = 0;
};

/// Edge-compatibility check of the graph layer: `produced` (what the
/// upstream operator emits) must match `required` (what the edge carries)
/// field by field. On mismatch the message names the first offending field
/// and whether names, types, or widths diverge.
Status CheckCompatible(const Schema& produced, const Schema& required);

/// The type of a dataflow-graph edge: the tuple schema plus the delivery
/// ordering the edge is required to provide.
struct EdgeType {
  Schema schema;
  Ordering ordering = Ordering::kNone;
};

/// Read-only view of one packed tuple described by a Schema. Cheap to copy;
/// does not own memory.
class TupleView {
 public:
  TupleView() = default;
  TupleView(const uint8_t* data, const Schema* schema)
      : data_(data), schema_(schema) {}

  const uint8_t* data() const { return data_; }
  const Schema* schema() const { return schema_; }
  bool valid() const { return data_ != nullptr; }

  /// Typed getter; T must match the field's width (memcpy'd, so packed
  /// layouts are fine).
  template <typename T>
  T Get(size_t field_index) const {
    T value;
    std::memcpy(&value, data_ + schema_->offset(field_index), sizeof(T));
    return value;
  }

  const uint8_t* FieldPtr(size_t field_index) const {
    return data_ + schema_->offset(field_index);
  }

 private:
  const uint8_t* data_ = nullptr;
  const Schema* schema_ = nullptr;
};

/// Serializes typed values into a packed tuple buffer.
class TupleWriter {
 public:
  TupleWriter(uint8_t* data, const Schema* schema)
      : data_(data), schema_(schema) {}

  template <typename T>
  TupleWriter& Set(size_t field_index, const T& value) {
    std::memcpy(data_ + schema_->offset(field_index), &value, sizeof(T));
    return *this;
  }

  TupleWriter& SetBytes(size_t field_index, const void* bytes, size_t len) {
    std::memcpy(data_ + schema_->offset(field_index), bytes, len);
    return *this;
  }

 private:
  uint8_t* data_;
  const Schema* schema_;
};

}  // namespace dfi

#endif  // DFI_CORE_SCHEMA_H_
