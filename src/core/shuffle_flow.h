#ifndef DFI_CORE_SHUFFLE_FLOW_H_
#define DFI_CORE_SHUFFLE_FLOW_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "core/endpoint/channel_matrix.h"
#include "core/endpoint/flow_endpoint.h"
#include "core/endpoint/flow_sink.h"
#include "core/endpoint/policies.h"
#include "core/flow_options.h"
#include "core/nodes.h"
#include "core/routing.h"
#include "core/schema.h"
#include "registry/flow_registry.h"
#include "rdma/rdma_env.h"

namespace dfi {

/// Declarative description of a shuffle flow (paper Figure 1 / Table 1):
/// N source threads route tuples to M target threads, supporting 1:1, N:1,
/// 1:N and N:M topologies.
struct ShuffleFlowSpec {
  std::string name;
  DfiNodes sources;
  DfiNodes targets;
  Schema schema;
  /// Field used by the default key-hash routing.
  size_t shuffle_key_index = 0;
  /// Optional routing override: either a recognized builtin partitioner
  /// (KeyHashRouting / RadixRouting, which PushBatch runs devirtualized
  /// over whole batches) or an arbitrary RoutingFn (assignable directly;
  /// dispatched per tuple).
  RoutingSpec routing;
  FlowOptions options;
};

/// Shared state of one initialized shuffle flow; published in the registry.
/// A shuffle flow is pure transport — the whole state is the channel
/// matrix.
class ShuffleFlowState : public FlowStateBase {
 public:
  ShuffleFlowState(ShuffleFlowSpec spec, rdma::RdmaEnv* env);

  const ShuffleFlowSpec& spec() const { return spec_; }
  rdma::RdmaEnv* env() { return env_; }
  ChannelMatrix* matrix() { return &matrix_; }
  uint32_t num_sources() const {
    return static_cast<uint32_t>(spec_.sources.size());
  }
  uint32_t num_targets() const {
    return static_cast<uint32_t>(spec_.targets.size());
  }

  ChannelShared* channel(uint32_t source, uint32_t target) {
    return matrix_.channel(source, target);
  }
  ReadyGate* target_gate(uint32_t target) {
    return matrix_.target_gate(target);
  }
  net::NodeId source_node(uint32_t source) const {
    return source_nodes_[source];
  }
  const std::vector<net::NodeId>& source_nodes() const {
    return source_nodes_;
  }
  const std::vector<net::NodeId>& target_nodes() const {
    return target_nodes_;
  }

  /// Work-stealing plane (adaptive shuffles with work_stealing on and
  /// ordered_handoff off): one shared column per target, grouped per node.
  /// Null when the flow runs the exclusive-sink path.
  StealColumn* steal_column(uint32_t target) const {
    return steal_columns_.empty() ? nullptr : steal_columns_[target].get();
  }
  SinkStealGroup* steal_group_of(uint32_t target) const {
    return steal_columns_.empty() ? nullptr : group_of_target_[target];
  }

  /// Registered bytes of all rings of this flow on `node` (memory
  /// accounting, paper section 6.1.4; excludes source-side staging which is
  /// counted when sources are created).
  uint64_t RingBytesOnNode(net::NodeId node) const {
    return matrix_.RingBytesOnNode(node);
  }

  /// Tears down the whole flow: poisons every channel so all participants'
  /// next (or currently blocked) operation returns `cause`. Safe from any
  /// thread; endpoint-level Abort() calls funnel here.
  void Abort(const Status& cause) override { matrix_.PoisonAll(cause); }

 private:
  const ShuffleFlowSpec spec_;
  rdma::RdmaEnv* const env_;
  std::vector<net::NodeId> source_nodes_;
  std::vector<net::NodeId> target_nodes_;
  ChannelMatrix matrix_;
  // Work-stealing plane; empty unless enabled (see steal_column()).
  std::vector<std::unique_ptr<StealColumn>> steal_columns_;
  std::vector<std::unique_ptr<SinkStealGroup>> steal_groups_;  // per node
  std::vector<SinkStealGroup*> group_of_target_;
};

/// Source handle of a shuffle flow, bound to one worker thread: a
/// FlowEndpoint (the unified source transport) driven by the flow's
/// Partitioner policy. Obtained from DfiRuntime::CreateShuffleSource. Push
/// is asynchronous and returns as soon as the tuple is staged (paper
/// section 3.3).
class ShuffleSource {
 public:
  ShuffleSource(std::shared_ptr<ShuffleFlowState> state,
                uint32_t source_index);

  ShuffleSource(const ShuffleSource&) = delete;
  ShuffleSource& operator=(const ShuffleSource&) = delete;

  /// Pushes one packed tuple, routed by the flow's key / routing function
  /// (or its AdaptivePartitioner when the flow opted into skew
  /// adaptation).
  Status Push(const void* tuple) {
    if (adaptive_.has_value()) {
      return endpoint_->PushAdaptive(tuple, &*adaptive_);
    }
    return endpoint_->Push(tuple, &partitioner_);
  }
  Status Push(TupleView tuple) { return Push(tuple.data()); }

  /// Batched push: partitions a run of `count` densely packed tuples and
  /// scatters them directly into the per-target staging segments in one
  /// fused sweep over the batch (see FlowEndpoint::PushBatch). Delivers
  /// exactly the same per-target tuple sequences as calling Push on each
  /// tuple in order.
  Status PushBatch(const void* tuples, size_t count) {
    if (adaptive_.has_value()) {
      return endpoint_->PushBatchAdaptive(tuples, count, &*adaptive_);
    }
    return endpoint_->PushBatch(tuples, count, &partitioner_);
  }

  /// Pushes with an explicit target (paper section 4.2.1, option (3)).
  Status PushTo(const void* tuple, uint32_t target_index) {
    return endpoint_->PushTo(tuple, target_index);
  }

  /// Transmits all partially-filled segments.
  Status Flush() { return endpoint_->Flush(); }

  /// Flushes and signals end-of-flow to every target. Idempotent.
  Status Close() { return endpoint_->Close(); }

  /// Aborts this source's channels without a clean end-of-flow: every
  /// target observes the poisoned footer / shared poison state and its
  /// consume returns kError. Used when the worker cannot finish (crash
  /// simulation, upstream failure).
  void Abort(const Status& cause) { endpoint_->Abort(cause); }

  const Schema& schema() const { return state_->spec().schema; }
  uint32_t source_index() const { return source_index_; }
  VirtualClock& clock() { return clock_; }

  /// The skew-adaptation policy, when the flow opted in (observability:
  /// promotions/demotions/re-split counts).
  const AdaptivePartitioner* adaptive() const {
    return adaptive_.has_value() ? &*adaptive_ : nullptr;
  }

 private:
  std::shared_ptr<ShuffleFlowState> state_;
  const uint32_t source_index_;
  VirtualClock clock_;
  Partitioner partitioner_;  // resolved routing policy (never kUnset)
  std::optional<AdaptivePartitioner> adaptive_;  // opt-in skew adaptation
  std::optional<FlowEndpoint> endpoint_;
};

/// Target handle of a shuffle flow, bound to one worker thread: a FlowSink
/// (the unified target transport) with no consume-side policy — shuffle
/// targets surface segments and tuples as-is.
class ShuffleTarget {
 public:
  ShuffleTarget(std::shared_ptr<ShuffleFlowState> state,
                uint32_t target_index);

  ShuffleTarget(const ShuffleTarget&) = delete;
  ShuffleTarget& operator=(const ShuffleTarget&) = delete;

  /// Blocking: next tuple out of the flow. Returns kFlowEnd once every
  /// source has closed and all segments are drained.
  ConsumeResult Consume(TupleView* out) { return sink_->Consume(out); }

  /// Blocking: next whole segment, zero-copy. The view is valid until the
  /// next ConsumeSegment/Consume call.
  ConsumeResult ConsumeSegment(SegmentView* out) {
    return sink_->ConsumeSegment(out);
  }

  /// Non-blocking variant; returns false if nothing is currently
  /// consumable (out_result distinguishes empty from flow end).
  bool TryConsumeSegment(SegmentView* out, ConsumeResult* out_result) {
    return sink_->TryConsumeSegment(out, out_result);
  }

  /// Aborts the target side: sources blocked on this target's full rings
  /// wake with kAborted instead of waiting out their deadline.
  void Abort(const Status& cause) { sink_->Abort(cause); }

  /// The failure behind the last ConsumeResult::kError (OK otherwise).
  const Status& last_status() const { return sink_->last_status(); }

  const Schema& schema() const { return state_->spec().schema; }
  uint32_t target_index() const { return target_index_; }
  VirtualClock& clock() { return clock_; }

  /// Work-stealing mode: segments consumed from same-node siblings'
  /// columns (0 on the exclusive path).
  uint64_t stolen_segments() const { return sink_->stolen_segments(); }

 private:
  std::shared_ptr<ShuffleFlowState> state_;
  const uint32_t target_index_;
  VirtualClock clock_;
  std::optional<FlowSink> sink_;
};

}  // namespace dfi

#endif  // DFI_CORE_SHUFFLE_FLOW_H_
