#ifndef DFI_CORE_SHUFFLE_FLOW_H_
#define DFI_CORE_SHUFFLE_FLOW_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "core/channel.h"
#include "core/flow_options.h"
#include "core/nodes.h"
#include "core/routing.h"
#include "core/schema.h"
#include "registry/flow_registry.h"
#include "rdma/rdma_env.h"

namespace dfi {

class DeadlineWait;

/// Declarative description of a shuffle flow (paper Figure 1 / Table 1):
/// N source threads route tuples to M target threads, supporting 1:1, N:1,
/// 1:N and N:M topologies.
struct ShuffleFlowSpec {
  std::string name;
  DfiNodes sources;
  DfiNodes targets;
  Schema schema;
  /// Field used by the default key-hash routing.
  size_t shuffle_key_index = 0;
  /// Optional routing override: either a recognized builtin partitioner
  /// (KeyHashRouting / RadixRouting, which PushBatch runs devirtualized
  /// over whole batches) or an arbitrary RoutingFn (assignable directly;
  /// dispatched per tuple).
  RoutingSpec routing;
  FlowOptions options;
};

/// Shared state of one initialized shuffle flow; published in the registry.
/// Holds the private ring buffer of every (source thread, target thread)
/// pair plus the target gates.
class ShuffleFlowState : public FlowStateBase {
 public:
  ShuffleFlowState(ShuffleFlowSpec spec, rdma::RdmaEnv* env);

  const ShuffleFlowSpec& spec() const { return spec_; }
  rdma::RdmaEnv* env() { return env_; }
  uint32_t num_sources() const {
    return static_cast<uint32_t>(spec_.sources.size());
  }
  uint32_t num_targets() const {
    return static_cast<uint32_t>(spec_.targets.size());
  }

  ChannelShared* channel(uint32_t source, uint32_t target) {
    return channels_[source * num_targets() + target].get();
  }
  ReadyGate* target_gate(uint32_t target) { return &target_gates_[target]; }
  net::NodeId source_node(uint32_t source) const {
    return source_nodes_[source];
  }

  /// Registered bytes of all rings of this flow on `node` (memory
  /// accounting, paper section 6.1.4; excludes source-side staging which is
  /// counted when sources are created).
  uint64_t RingBytesOnNode(net::NodeId node) const;

  /// Tears down the whole flow: poisons every channel so all participants'
  /// next (or currently blocked) operation returns `cause`. Safe from any
  /// thread; endpoint-level Abort() calls funnel here.
  void Abort(const Status& cause) override;

 private:
  const ShuffleFlowSpec spec_;
  rdma::RdmaEnv* const env_;
  std::vector<net::NodeId> source_nodes_;
  std::vector<net::NodeId> target_nodes_;
  std::vector<std::unique_ptr<ChannelShared>> channels_;
  std::unique_ptr<ReadyGate[]> target_gates_;
};

/// Source handle of a shuffle flow, bound to one worker thread. Obtained
/// from DfiRuntime::CreateShuffleSource. Push is asynchronous and returns
/// as soon as the tuple is staged (paper section 3.3).
class ShuffleSource {
 public:
  ShuffleSource(std::shared_ptr<ShuffleFlowState> state,
                uint32_t source_index);

  ShuffleSource(const ShuffleSource&) = delete;
  ShuffleSource& operator=(const ShuffleSource&) = delete;

  /// Pushes one packed tuple, routed by the flow's key / routing function.
  Status Push(const void* tuple);
  Status Push(TupleView tuple) { return Push(tuple.data()); }

  /// Batched push: partitions a run of `count` densely packed tuples and
  /// scatters them directly into the per-target staging segments in one
  /// fused sweep over the batch (zero-copy reservations, see
  /// ChannelSource::ReserveTuples). Builtin partitioners (key-hash, radix)
  /// run devirtualized — one indirect call per batch instead of one per
  /// tuple; a custom RoutingFn falls back to per-tuple dispatch for the
  /// partitioning decision only. Delivers exactly the same per-target
  /// tuple sequences as calling Push on each tuple in order.
  Status PushBatch(const void* tuples, size_t count);

  /// Pushes with an explicit target (paper section 4.2.1, option (3)).
  Status PushTo(const void* tuple, uint32_t target_index);

  /// Transmits all partially-filled segments.
  Status Flush();

  /// Flushes and signals end-of-flow to every target. Idempotent.
  Status Close();

  /// Aborts this source's channels without a clean end-of-flow: every
  /// target observes the poisoned footer / shared poison state and its
  /// consume returns kError. Used when the worker cannot finish (crash
  /// simulation, upstream failure).
  void Abort(const Status& cause);

  const Schema& schema() const { return state_->spec().schema; }
  uint32_t source_index() const { return source_index_; }
  VirtualClock& clock() { return clock_; }

 private:
  /// Per-target write cursor into an open zero-copy reservation
  /// (ChannelSource::ReserveTuples), refilled on demand while PushBatch
  /// sweeps a batch. A pointer pair keeps the per-tuple hot path to one
  /// compare and one bump; the committed tuple count is recovered as
  /// (dst - start) / tuple_size at the (rare) refill and tail commits.
  struct BatchCursor {
    uint8_t* dst = nullptr;    // next write position
    uint8_t* end = nullptr;    // reservation end; dst == end forces refill
    uint8_t* start = nullptr;  // reservation base
  };

  /// Scatters a contiguous run of `n` tuples to one target (1-target flows
  /// and explicit-target batches skip partitioning entirely).
  Status AppendRun(uint32_t target, const uint8_t* run, size_t n);

  std::shared_ptr<ShuffleFlowState> state_;
  const uint32_t source_index_;
  /// Cached schema().tuple_size(); immutable per flow, so the hot path
  /// never re-derives it.
  const uint32_t tuple_size_;
  RoutingSpec routing_spec_;  // resolved (never kUnset)
  RoutingFn routing_;         // per-tuple form of routing_spec_
  FastDivisor target_mod_;    // magic-number `% num_targets`
  VirtualClock clock_;
  std::vector<std::unique_ptr<ChannelSource>> channels_;  // one per target
  std::vector<BatchCursor> batch_cursors_;  // scratch, one per target
};

/// Target handle of a shuffle flow, bound to one worker thread. Consumes
/// tuples (or whole segments, zero-copy) from its private rings in
/// delivery order, popping ready-channel indices from the target gate
/// (O(active channels) per consume) instead of round-robin scanning every
/// ring (paper Figure 4's nextRing(), which is O(num_sources)).
class ShuffleTarget {
 public:
  ShuffleTarget(std::shared_ptr<ShuffleFlowState> state,
                uint32_t target_index);

  ShuffleTarget(const ShuffleTarget&) = delete;
  ShuffleTarget& operator=(const ShuffleTarget&) = delete;

  /// Blocking: next tuple out of the flow. Returns kFlowEnd once every
  /// source has closed and all segments are drained.
  ConsumeResult Consume(TupleView* out);

  /// Blocking: next whole segment, zero-copy. The view is valid until the
  /// next ConsumeSegment/Consume call.
  ConsumeResult ConsumeSegment(SegmentView* out);

  /// Non-blocking variant; returns false if nothing is currently
  /// consumable (out_result distinguishes empty from flow end).
  bool TryConsumeSegment(SegmentView* out, ConsumeResult* out_result);

  /// Aborts the target side: sources blocked on this target's full rings
  /// wake with kAborted instead of waiting out their deadline.
  void Abort(const Status& cause);

  /// The failure behind the last ConsumeResult::kError (OK otherwise).
  const Status& last_status() const { return last_status_; }

  const Schema& schema() const { return state_->spec().schema; }
  uint32_t target_index() const { return target_index_; }
  VirtualClock& clock() { return clock_; }

 private:
  /// Releases the held cursor (if any), tracking its exhaustion.
  void ReleaseHeld();
  /// One failure-poll round while blocked: surfaces teardown (poison),
  /// crashed sources (fault plan), or the flow deadline as kError; ticks
  /// `wait`. Returns true when the consume call must stop.
  bool CheckFailure(DeadlineWait* wait, ConsumeResult* out_result);

  std::shared_ptr<ShuffleFlowState> state_;
  const uint32_t target_index_;
  const net::SimConfig* config_;
  VirtualClock clock_;
  std::vector<std::unique_ptr<ChannelTargetCursor>> cursors_;  // per source
  uint32_t exhausted_count_ = 0;  // cursors that reached end-of-flow
  int held_cursor_ = -1;  // cursor whose segment `current_` views
  SegmentView current_;
  uint32_t tuple_offset_ = 0;  // iteration state within current_
  Status last_status_;
};

}  // namespace dfi

#endif  // DFI_CORE_SHUFFLE_FLOW_H_
