#include "core/channel.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "core/deadline.h"
#include "core/endpoint/backpressure.h"

namespace dfi {
namespace {

uint32_t RoundUp8(uint32_t v) { return (v + 7u) & ~7u; }

}  // namespace

// ---------------------------------------------------------------------------
// ChannelShared
// ---------------------------------------------------------------------------

uint32_t ChannelShared::PayloadCapacityFor(const FlowOptions& options,
                                           uint32_t tuple_size) {
  if (options.optimization == FlowOptimization::kLatency) {
    return RoundUp8(tuple_size);
  }
  return std::max(RoundUp8(options.segment_size), RoundUp8(tuple_size));
}

ChannelShared::ChannelShared(rdma::RdmaContext* target_ctx,
                             const FlowOptions& options, uint32_t tuple_size,
                             uint16_t source_index)
    : options_(options),
      tuple_size_(tuple_size),
      source_index_(source_index),
      target_node_(target_ctx->node_id()),
      fault_plan_(&target_ctx->env().fabric().fault_plan()) {
  const uint32_t capacity = PayloadCapacityFor(options, tuple_size);
  const uint32_t num_segments = options.segments_per_ring;
  DFI_CHECK_GT(num_segments, 1u) << "a ring needs at least 2 segments";
  const size_t ring_bytes =
      static_cast<size_t>(capacity + sizeof(SegmentFooter)) * num_segments;
  ring_mr_ = target_ctx->AllocateRegion(ring_bytes);
  ring_ = SegmentRing(ring_mr_->addr(), capacity, num_segments);
  credit_mr_ = target_ctx->AllocateRegion(64);
  slot_free_time_ =
      std::make_unique<std::atomic<SimTime>[]>(num_segments);
  for (uint32_t i = 0; i < num_segments; ++i) {
    slot_free_time_[i].store(0, std::memory_order_relaxed);
  }
}

uint64_t ChannelShared::LoadConsumed() const {
  return std::atomic_ref<uint64_t>(
             *reinterpret_cast<uint64_t*>(credit_mr_->addr()))
      .load(std::memory_order_acquire);
}

void ChannelShared::IncrementConsumed() {
  std::atomic_ref<uint64_t>(*reinterpret_cast<uint64_t*>(credit_mr_->addr()))
      .fetch_add(1, std::memory_order_acq_rel);
}

void ChannelShared::Poison(const Status& cause) {
  {
    std::lock_guard<std::mutex> lock(poison_mu_);
    if (poisoned_.load(std::memory_order_relaxed)) return;  // first cause wins
    poison_cause_ = cause.ok() ? Status::Aborted("flow aborted") : cause;
    poisoned_.store(true, std::memory_order_release);
  }
  sync_.Notify();
  if (target_gate_ != nullptr) target_gate_->Notify();
  if (steal_wake_ != nullptr) steal_wake_->Notify();
}

void ChannelShared::AnnounceDelivered() {
  inflight_.fetch_add(1, std::memory_order_relaxed);
  if (load_board_ != nullptr) load_board_->OnDelivered(load_target_);
  if (steal_wake_ != nullptr) steal_wake_->Notify();
}

void ChannelShared::AnnounceConsumed() {
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  if (load_board_ != nullptr) load_board_->OnConsumed(load_target_);
}

Status ChannelShared::poison_status() const {
  if (!poisoned()) return Status::OK();
  std::lock_guard<std::mutex> lock(poison_mu_);
  return poison_cause_;
}

// ---------------------------------------------------------------------------
// ChannelSource
// ---------------------------------------------------------------------------

ChannelSource::ChannelSource(ChannelShared* shared,
                             rdma::RdmaContext* source_ctx,
                             VirtualClock* clock)
    : shared_(shared), clock_(clock), config_(&source_ctx->config()) {
  tuple_push_cost_ns_ =
      config_->tuple_push_fixed_ns +
      static_cast<SimTime>(std::llround(shared_->tuple_size() *
                                        config_->tuple_copy_ns_per_byte));
  shared_->set_source_node(source_ctx->node_id());
  send_cq_ = source_ctx->CreateCq();
  qp_ = source_ctx->CreateRcQp(shared_->target_node(), send_cq_);
  const bool latency =
      shared_->options().optimization == FlowOptimization::kLatency;
  const uint32_t capacity = shared_->ring().payload_capacity();
  const uint32_t staging_slots =
      latency ? 1 : std::max(2u, shared_->options().source_segments);
  const size_t staging_bytes =
      static_cast<size_t>(capacity + sizeof(SegmentFooter)) * staging_slots;
  staging_mr_ = source_ctx->AllocateRegion(staging_bytes);
  staging_ = SegmentRing(staging_mr_->addr(), capacity, staging_slots);
}

ChannelSource::~ChannelSource() {
  if (!closed_) {
    DFI_LOG(WARNING) << "ChannelSource destroyed without Close(); the "
                        "target will never observe end-of-flow";
  }
}

Status ChannelSource::Push(const void* tuple, uint32_t len) {
  if (closed_) {
    return Status::FailedPrecondition("push on closed channel");
  }
  if (len != shared_->tuple_size()) {
    return Status::InvalidArgument("tuple size mismatch: got " +
                                   std::to_string(len) + ", schema has " +
                                   std::to_string(shared_->tuple_size()));
  }
  clock_->Advance(tuple_push_cost_ns_);

  if (shared_->options().optimization == FlowOptimization::kLatency) {
    // One tuple = one segment, transmitted immediately (flow control via
    // credits inside TransmitSegment).
    std::memcpy(staging_.payload(0), tuple, len);
    return TransmitSegment(staging_.payload(0), len, /*end=*/false);
  }

  // Bandwidth mode: stage into the current segment of the source ring.
  // Invariant: every path that fills a segment (the tail of this function,
  // CommitTuples) eagerly flushes once no further tuple fits, so on entry
  // the current segment always has room for one more tuple.
  const uint32_t capacity = staging_.payload_capacity();
  DFI_DCHECK(fill_ + len <= capacity);
  std::memcpy(staging_.payload(staging_slot_) + fill_, tuple, len);
  fill_ += len;
  if (fill_ + shared_->tuple_size() > capacity) {
    // Eagerly transmit full segments for maximal pipelining.
    DFI_RETURN_IF_ERROR(Flush());
  }
  return Status::OK();
}

Status ChannelSource::ReserveTuples(uint32_t max_tuples, uint32_t* granted,
                                    uint8_t** out) {
  if (closed_) {
    return Status::FailedPrecondition("reserve on closed channel");
  }
  if (shared_->options().optimization == FlowOptimization::kLatency) {
    // One tuple = one segment: grant single-tuple reservations that
    // CommitTuples transmits immediately.
    *granted = max_tuples == 0 ? 0 : 1;
    *out = staging_.payload(0);
    return Status::OK();
  }
  const uint32_t tuple_size = shared_->tuple_size();
  const uint32_t capacity = staging_.payload_capacity();
  DFI_DCHECK(fill_ + tuple_size <= capacity);  // eager-flush invariant
  const uint32_t space = (capacity - fill_) / tuple_size;
  *granted = std::min(max_tuples, space);
  *out = staging_.payload(staging_slot_) + fill_;
  return Status::OK();
}

Status ChannelSource::CommitTuples(uint32_t count) {
  if (count == 0) return Status::OK();
  if (closed_) {
    return Status::FailedPrecondition("commit on closed channel");
  }
  // One clock charge for the whole batch instead of one per tuple.
  clock_->Advance(static_cast<SimTime>(count) * tuple_push_cost_ns_);
  const uint32_t tuple_size = shared_->tuple_size();
  if (shared_->options().optimization == FlowOptimization::kLatency) {
    DFI_CHECK_EQ(count, 1u) << "latency-mode reservations are single-tuple";
    return TransmitSegment(staging_.payload(0), tuple_size, /*end=*/false);
  }
  fill_ += count * tuple_size;
  DFI_DCHECK(fill_ <= staging_.payload_capacity());
  if (fill_ + tuple_size > staging_.payload_capacity()) {
    // Eagerly transmit full segments for maximal pipelining (same invariant
    // as Push).
    return Flush();
  }
  return Status::OK();
}

Status ChannelSource::PushSegment(uint8_t* staged_slot, uint32_t fill,
                                  bool end) {
  if (closed_) {
    return Status::FailedPrecondition("push on closed channel");
  }
  DFI_RETURN_IF_ERROR(TransmitSegment(staged_slot, fill, end));
  if (end) closed_ = true;
  return Status::OK();
}

Status ChannelSource::Flush() {
  if (fill_ == 0) return Status::OK();
  const uint8_t* payload = staging_.payload(staging_slot_);
  const uint32_t fill = fill_;
  staging_slot_ = (staging_slot_ + 1) % staging_.num_segments();
  fill_ = 0;
  return TransmitSegment(payload, fill, /*end=*/false);
}

void ChannelSource::Abort(const Status& cause) {
  const bool was_poisoned = shared_->poisoned();
  shared_->Poison(cause);
  closed_ = true;
  if (was_poisoned) return;
  // Best-effort poisoned footer publication into the slot the target polls
  // next (its cursor trails our send sequence in ring order), so a remote
  // footer poller discovers the teardown through the data path itself. If
  // the write fails — e.g. our own node is the one the fault plan crashed —
  // the shared poison state above already did the job.
  const SegmentRing& ring = shared_->ring();
  const bool latency =
      shared_->options().optimization == FlowOptimization::kLatency;
  const uint64_t seq = latency ? sent_tuples_ : send_seq_;
  const uint32_t idx = static_cast<uint32_t>(seq % ring.num_segments());
  uint8_t poison_flag = kFlagPoisoned;
  rdma::WriteDesc desc;
  desc.local = &poison_flag;
  desc.remote = shared_->ring_mr()->RefAt(ring.footer_offset(idx) +
                                          sizeof(SegmentFooter) - 1);
  desc.length = 1;
  desc.wr_id = seq;
  desc.signaled = false;
  desc.inlined = true;
  (void)qp_->PostWrite(desc, clock_);
  shared_->sync().Notify();
  if (ReadyGate* gate = shared_->target_gate(); gate != nullptr) {
    gate->Notify();
  }
  if (ReadyGate* wake = shared_->steal_wake(); wake != nullptr) {
    wake->Notify();
  }
}

Status ChannelSource::Close() {
  if (closed_) return Status::OK();
  if (shared_->poisoned()) {
    closed_ = true;
    return shared_->poison_status();
  }
  if (shared_->options().optimization == FlowOptimization::kLatency) {
    DFI_RETURN_IF_ERROR(
        TransmitSegment(staging_.payload(0), 0, /*end=*/true));
  } else {
    const uint8_t* payload = staging_.payload(staging_slot_);
    const uint32_t fill = fill_;
    fill_ = 0;
    DFI_RETURN_IF_ERROR(TransmitSegment(payload, fill, /*end=*/true));
  }
  closed_ = true;
  return Status::OK();
}

Status ChannelSource::EnsureRemoteWritable(uint32_t idx) {
  const SegmentRing& ring = shared_->ring();
  if (ring.LoadFlags(idx) == kFlagWritable) {
    // Fast path: the pipelined footer prefetch (issued together with the
    // previous write of this ring) already told us the slot is free.
    return Status::OK();
  }
  // Slow path: the remote ring is full. On hardware the source polls the
  // footer with RDMA reads and capped exponential backoff; here the caller
  // blocks (engine tasks park their fiber, plain threads sleep in bounded
  // slices) while DeadlineWait keeps the virtual backoff ledger. A
  // successful wait charges from the footer's free timestamp as before;
  // teardown, a dead consumer, or the flow deadline end the wait with an
  // error instead of hanging forever.
  DeadlineWait wait(shared_->options(), clock_);
  RingSync& sync = shared_->sync();
  for (;;) {
    const uint64_t seen = sync.version();
    if (ring.LoadFlags(idx) == kFlagWritable) break;
    if (shared_->poisoned()) {
      wait.Commit();
      return shared_->poison_status();
    }
    if (Status peer = qp_->CheckConnected(wait.ProvisionalNow());
        !peer.ok()) {
      wait.Commit();
      return peer;
    }
    if (!wait.Tick()) {
      wait.Commit();
      return Status::DeadlineExceeded(
          "remote ring full: slot " + std::to_string(idx) +
          " not writable within " +
          std::to_string(shared_->options().block_deadline_ns) + "ns");
    }
    wait.Block(sync, seen);
  }
  clock_->AdvanceTo(ring.footer(idx)->arrival_sim_time);
  rdma::ReadDesc read;
  read.local = scratch_footer_;
  read.remote = shared_->ring_mr()->RefAt(ring.footer_offset(idx));
  read.length = sizeof(SegmentFooter);
  auto timing = qp_->PostRead(read, clock_);
  if (!timing.ok()) return timing.status();
  clock_->AdvanceTo(timing->arrival);
  ++footer_reads_;
  return Status::OK();
}

Status ChannelSource::EnsureCredit() {
  const uint32_t slots = shared_->ring().num_segments();
  const uint64_t threshold = std::max<uint64_t>(1, slots / 4);
  uint64_t avail = slots - (sent_tuples_ - cached_consumed_);
  if (avail > threshold) return Status::OK();

  // Running low: refresh the cached copy of the remote credit counter with
  // an RDMA read (paper section 5.3).
  auto refresh = [&]() -> Status {
    rdma::ReadDesc read;
    read.local = scratch_footer_;
    read.remote = shared_->credit_ref();
    read.length = sizeof(uint64_t);
    auto timing = qp_->PostRead(read, clock_);
    if (!timing.ok()) return timing.status();
    cached_consumed_ = shared_->LoadConsumed();
    clock_->AdvanceTo(timing->arrival);
    return Status::OK();
  };
  DFI_RETURN_IF_ERROR(refresh());
  avail = slots - (sent_tuples_ - cached_consumed_);

  DeadlineWait wait(shared_->options(), clock_);
  RingSync& sync = shared_->sync();
  while (avail == 0) {
    const uint64_t seen = sync.version();
    if (shared_->LoadConsumed() > cached_consumed_) {
      clock_->AdvanceTo(shared_
                            ->slot_free_time(static_cast<uint32_t>(
                                sent_tuples_ % slots))
                            .load(std::memory_order_acquire));
      DFI_RETURN_IF_ERROR(refresh());
      avail = slots - (sent_tuples_ - cached_consumed_);
      continue;
    }
    if (shared_->poisoned()) {
      wait.Commit();
      return shared_->poison_status();
    }
    if (Status peer = qp_->CheckConnected(wait.ProvisionalNow());
        !peer.ok()) {
      wait.Commit();
      return peer;
    }
    if (!wait.Tick()) {
      wait.Commit();
      return Status::DeadlineExceeded(
          "credit refresh: no credit within " +
          std::to_string(shared_->options().block_deadline_ns) + "ns");
    }
    wait.Block(sync, seen);
  }
  return Status::OK();
}

Status ChannelSource::TransmitSegment(const uint8_t* payload, uint32_t fill,
                                      bool end) {
  if (shared_->poisoned()) return shared_->poison_status();
  const SegmentRing& ring = shared_->ring();
  const bool latency =
      shared_->options().optimization == FlowOptimization::kLatency;
  // Sealing a batch (footer bookkeeping, fill accounting) is a bandwidth-
  // path cost; the latency path writes a single prepared tuple slot.
  clock_->Advance(latency ? config_->segment_seal_ns / 4
                          : config_->segment_seal_ns);
  const uint64_t seq = latency ? sent_tuples_ : send_seq_;
  const uint32_t idx = static_cast<uint32_t>(seq % ring.num_segments());

  if (latency) {
    DFI_RETURN_IF_ERROR(EnsureCredit());
  } else {
    DFI_RETURN_IF_ERROR(EnsureRemoteWritable(idx));
  }

  // Selective signaling: request a completion only when the source ring
  // wraps around (paper section 5.2); latency mode is unsignaled + inlined.
  const bool wrap =
      !latency &&
      (send_seq_ % staging_.num_segments()) == staging_.num_segments() - 1;
  if (wrap && signal_outstanding_) {
    // Reap the completion of the *previous* wrap before overwriting more
    // staging slots. In steady state that ack lies in the past (it was
    // posted a full ring ago), so this does not stall the pipeline.
    rdma::Completion c;
    while (send_cq_->TryPoll(&c, clock_)) {
    }
    signal_outstanding_ = false;
  }

  // Build the footer in the staging slot right behind the payload we were
  // given (payload always points at a staging slot base).
  auto* footer = reinterpret_cast<SegmentFooter*>(
      const_cast<uint8_t*>(payload) + ring.payload_capacity());
  footer->sequence = seq;
  footer->fill_bytes = fill;
  footer->source_index = shared_->source_index();
  footer->reserved = 0;
  footer->flags = static_cast<uint8_t>(kFlagConsumable |
                                       (end ? kFlagEndOfFlow : 0));

  // A segment is "full" when no further tuple fits; it is then transmitted
  // as a single contiguous write of the whole slot (payload + footer, the
  // footer landing last thanks to increasing-address DMA order).
  const bool full_slot =
      fill + shared_->tuple_size() > ring.payload_capacity();
  if (full_slot || latency) {
    const uint32_t len =
        ring.payload_capacity() + sizeof(SegmentFooter);
    const bool inlined = latency && len <= config_->max_inline_bytes;
    rdma::OpTiming t = qp_->PlanWrite(len, inlined, clock_);
    footer->arrival_sim_time = t.arrival;
    rdma::WriteDesc desc;
    desc.local = payload;
    desc.remote = shared_->ring_mr()->RefAt(ring.slot_offset(idx));
    desc.length = len;
    desc.wr_id = seq;
    desc.signaled = wrap;
    desc.inlined = inlined;
    DFI_RETURN_IF_ERROR(qp_->CommitWrite(desc, t));
  } else {
    // Partial segment: payload write followed by a small footer write; the
    // RC queue pair keeps them ordered, so the footer still lands last.
    if (fill > 0) {
      rdma::WriteDesc body;
      body.local = payload;
      body.remote = shared_->ring_mr()->RefAt(ring.slot_offset(idx));
      body.length = fill;
      body.wr_id = seq;
      auto t = qp_->PostWrite(body, clock_);
      if (!t.ok()) return t.status();
    }
    const bool inlined = sizeof(SegmentFooter) <= config_->max_inline_bytes;
    rdma::OpTiming t =
        qp_->PlanWrite(sizeof(SegmentFooter), inlined, clock_);
    footer->arrival_sim_time = t.arrival;
    rdma::WriteDesc fdesc;
    fdesc.local = footer;
    fdesc.remote = shared_->ring_mr()->RefAt(ring.footer_offset(idx));
    fdesc.length = sizeof(SegmentFooter);
    fdesc.wr_id = seq;
    fdesc.signaled = wrap;
    fdesc.inlined = inlined;
    DFI_RETURN_IF_ERROR(qp_->CommitWrite(fdesc, t));
  }

  if (wrap) signal_outstanding_ = true;
  shared_->sync().Notify();
  if (ReadyGate* gate = shared_->target_gate(); gate != nullptr) {
    // Announce the delivery: the target pops this channel's index instead
    // of scanning all of its rings.
    gate->Enqueue(shared_->source_index());
  }
  shared_->AnnounceDelivered();

  if (latency) {
    ++sent_tuples_;
  } else {
    // Pipelined prefetch of the *next* target footer (paper section 5.2):
    // issued back-to-back with this write so the next transmit usually
    // finds the slot state already known.
    const uint32_t next_idx =
        static_cast<uint32_t>((send_seq_ + 1) % ring.num_segments());
    rdma::ReadDesc prefetch;
    prefetch.local = scratch_footer_;
    prefetch.remote = shared_->ring_mr()->RefAt(ring.footer_offset(next_idx));
    prefetch.length = sizeof(SegmentFooter);
    auto t = qp_->PostRead(prefetch, clock_);
    if (!t.ok()) return t.status();
    ++footer_reads_;
  }
  ++send_seq_;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ChannelTargetCursor
// ---------------------------------------------------------------------------

ChannelTargetCursor::ChannelTargetCursor(ChannelShared* shared,
                                         VirtualClock* clock)
    : shared_(shared), clock_(clock) {}

bool ChannelTargetCursor::TryConsume(SegmentView* view) {
  return TryConsume(view, clock_);
}

void ChannelTargetCursor::Release() { Release(clock_); }

bool ChannelTargetCursor::TryConsume(SegmentView* view, VirtualClock* clock) {
  Release(clock);
  if (exhausted_) return false;
  const SegmentRing& ring = shared_->ring();
  const uint32_t idx = static_cast<uint32_t>(
      consume_seq_ % ring.num_segments());
  const uint8_t flags = ring.LoadFlags(idx);
  if ((flags & kFlagPoisoned) != 0) {
    // The source published a poisoned footer (Abort mid-flow); latch the
    // teardown so the target's consume loop surfaces kError.
    shared_->Poison(Status::Aborted("peer aborted flow"));
    return false;
  }
  if ((flags & kFlagConsumable) == 0) return false;

  const SegmentFooter* footer = ring.footer(idx);
  view->payload = ring.payload(idx);
  view->bytes = footer->fill_bytes;
  view->sequence = footer->sequence;
  view->source_index = footer->source_index;
  view->end_of_flow = (flags & kFlagEndOfFlow) != 0;
  view->arrival = footer->arrival_sim_time;
  clock->AdvanceTo(footer->arrival_sim_time);
  holding_ = true;
  return true;
}

void ChannelTargetCursor::Release(VirtualClock* clock) {
  if (!holding_) return;
  const SegmentRing& ring = shared_->ring();
  const uint32_t idx = static_cast<uint32_t>(
      consume_seq_ % ring.num_segments());
  SegmentFooter* footer = ring.footer(idx);
  const bool end = footer->end_of_flow();
  footer->fill_bytes = 0;
  footer->arrival_sim_time = clock->now();
  ring.StoreFlags(idx, kFlagWritable);
  if (shared_->options().optimization == FlowOptimization::kLatency) {
    shared_->slot_free_time(idx).store(clock->now(),
                                       std::memory_order_release);
    shared_->IncrementConsumed();
  }
  shared_->AnnounceConsumed();
  shared_->sync().Notify();
  ++consume_seq_;
  holding_ = false;
  if (end) exhausted_ = true;
}

}  // namespace dfi
