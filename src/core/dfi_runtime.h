#ifndef DFI_CORE_DFI_RUNTIME_H_
#define DFI_CORE_DFI_RUNTIME_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/shuffle_flow.h"
#include "net/fabric.h"
#include "registry/flow_registry.h"
#include "registry/registry_client.h"
#include "registry/registry_service.h"
#include "rdma/rdma_env.h"

namespace dfi {

struct ReplicateFlowSpec;
struct CombinerFlowSpec;
class ReplicateSource;
class ReplicateTarget;
class CombinerSource;
class CombinerTarget;

/// Entry point of the DFI library for one emulated cluster: binds the
/// network fabric, the RDMA environment and the central flow registry, and
/// exposes flow initialization and endpoint creation.
///
/// Typical lifecycle (paper Figure 1):
///
///   DfiRuntime dfi(&fabric);
///   DFI_CHECK_OK(dfi.InitShuffleFlow({
///       .name = "shuffle", .sources = ..., .targets = ...,
///       .schema = Schema{{"key", DataType::kInt64},
///                        {"value", DataType::kInt64}},
///       .shuffle_key_index = 0}));
///   auto source = dfi.CreateShuffleSource("shuffle", 0);   // source thread
///   auto target = dfi.CreateShuffleTarget("shuffle", 0);   // target thread
///   source->Push(...); source->Close();
///   while (target->Consume(&tuple) != ConsumeResult::kFlowEnd) { ... }
class DfiRuntime {
 public:
  explicit DfiRuntime(net::Fabric* fabric);
  ~DfiRuntime();

  DfiRuntime(const DfiRuntime&) = delete;
  DfiRuntime& operator=(const DfiRuntime&) = delete;

  net::Fabric& fabric() { return *fabric_; }
  rdma::RdmaEnv& rdma() { return *rdma_; }
  /// The control plane behind this runtime. The default deployment is a
  /// single-shard loopback service (no fabric coupling, zero virtual RPC
  /// cost — flow metadata exchange is not part of the data-path model);
  /// fabric-placed, replicated deployments construct their own
  /// reg::RegistryService/Client pair (see bench/registry_churn).
  reg::RegistryService& registry_service() { return registry_service_; }
  /// The runtime's own control-plane client (driver-thread identity; cache
  /// disabled — a loopback epoch never changes, so cached entries could
  /// not be fenced after RemoveFlow).
  reg::RegistryClient& registry_client() { return registry_client_; }
  const net::SimConfig& config() const { return fabric_->config(); }

  // ---- Shuffle flows -----------------------------------------------------
  /// Initializes a shuffle flow and publishes it in the registry
  /// (the paper's DFI_Flow_init).
  Status InitShuffleFlow(ShuffleFlowSpec spec);
  StatusOr<std::unique_ptr<ShuffleSource>> CreateShuffleSource(
      const std::string& flow_name, uint32_t source_index);
  StatusOr<std::unique_ptr<ShuffleTarget>> CreateShuffleTarget(
      const std::string& flow_name, uint32_t target_index);

  // ---- Replicate flows ---------------------------------------------------
  Status InitReplicateFlow(ReplicateFlowSpec spec);
  StatusOr<std::unique_ptr<ReplicateSource>> CreateReplicateSource(
      const std::string& flow_name, uint32_t source_index);
  StatusOr<std::unique_ptr<ReplicateTarget>> CreateReplicateTarget(
      const std::string& flow_name, uint32_t target_index);

  // ---- Combiner flows ----------------------------------------------------
  Status InitCombinerFlow(CombinerFlowSpec spec);
  StatusOr<std::unique_ptr<CombinerSource>> CreateCombinerSource(
      const std::string& flow_name, uint32_t source_index);
  StatusOr<std::unique_ptr<CombinerTarget>> CreateCombinerTarget(
      const std::string& flow_name, uint32_t target_index);

  /// Removes a flow from the registry (its state lives on until the last
  /// endpoint handle drops).
  Status RemoveFlow(const std::string& flow_name);

  /// Batched RemoveFlow: one control-plane round trip per owning shard
  /// instead of one per flow. Returns the first per-flow error (all
  /// removals are still attempted).
  Status RemoveFlows(const std::vector<std::string>& flow_names);

  /// Tears a flow down by name: every participant's next (or currently
  /// blocked) operation fails with `cause`. NotFound if no such flow.
  Status AbortFlow(const std::string& flow_name, const Status& cause);

  /// Total registered (flow-buffer) bytes currently on `node` — the memory
  /// consumption metric of paper section 6.1.4.
  uint64_t RegisteredBytesOnNode(net::NodeId node) const;

 private:
  template <typename StateT>
  StatusOr<std::shared_ptr<StateT>> LookupState(
      const std::string& flow_name) const;

  net::Fabric* const fabric_;
  std::unique_ptr<rdma::RdmaEnv> rdma_;
  reg::RegistryService registry_service_;
  // mutable: lookups from const paths go through the client stub (stats).
  mutable reg::RegistryClient registry_client_;
};

}  // namespace dfi

#endif  // DFI_CORE_DFI_RUNTIME_H_
