#ifndef DFI_CORE_SEGMENT_H_
#define DFI_CORE_SEGMENT_H_

#include <cstddef>
#include <cstdint>

#include "common/logging.h"
#include "common/sim_time.h"
#include "rdma/dma_memory.h"

namespace dfi {

/// Segment state flags. `kFlagWritable` (0) means the source may overwrite
/// the segment; `kFlagConsumable` means the target may read it;
/// `kFlagEndOfFlow` marks the source's final segment. `kFlagPoisoned`
/// propagates an Abort(): it travels like a normal footer publication, so a
/// remote poller discovers the teardown through the very footer it is
/// polling (the channel's shared poison state is the authoritative copy).
inline constexpr uint8_t kFlagWritable = 0x00;
inline constexpr uint8_t kFlagConsumable = 0x01;
inline constexpr uint8_t kFlagEndOfFlow = 0x02;
inline constexpr uint8_t kFlagPoisoned = 0x04;

/// Per-segment metadata placed *after* the payload (paper Figure 5). The
/// remote NIC DMAs memory in increasing address order, so once the target
/// observes the flags change the payload is guaranteed complete — no
/// checksum needed (paper section 5.2). `flags` is deliberately the final
/// byte: the emulation's DmaCopy publishes the last byte of every transfer
/// with release semantics (see rdma/dma_memory.h).
///
/// `arrival_sim_time` is emulation metadata: the virtual time at which this
/// state change became visible; consumers join their virtual clocks with
/// it. On real hardware this field does not exist.
struct SegmentFooter {
  uint64_t sequence = 0;        ///< segment sequence number (the "counter")
  SimTime arrival_sim_time = 0; ///< virtual availability time (emulation)
  uint32_t fill_bytes = 0;      ///< payload bytes used
  uint16_t source_index = 0;    ///< which flow source wrote the segment
  uint8_t reserved = 0;
  uint8_t flags = kFlagWritable;  ///< MUST stay the last byte

  bool consumable() const { return (flags & kFlagConsumable) != 0; }
  bool end_of_flow() const { return (flags & kFlagEndOfFlow) != 0; }
};
static_assert(sizeof(SegmentFooter) == 24, "footer layout is part of the "
              "wire format");
static_assert(offsetof(SegmentFooter, flags) == sizeof(SegmentFooter) - 1,
              "flags must be the final byte so DMA ordering publishes it "
              "last");

/// A segment ring: `num_segments` fixed-size slots, each
/// `payload_capacity + sizeof(SegmentFooter)` bytes, densely allocated in
/// one memory region (paper Figure 5). This class is a *view*; the memory
/// itself lives in a registered MemoryRegion (target-side) or plain buffer
/// (source-side).
class SegmentRing {
 public:
  SegmentRing() = default;
  SegmentRing(uint8_t* base, uint32_t payload_capacity, uint32_t num_segments)
      : base_(base),
        payload_capacity_(payload_capacity),
        num_segments_(num_segments) {
    // The footer must be 8-aligned within the slot for atomic publication.
    DFI_CHECK_EQ(payload_capacity % 8, 0u);
  }

  uint32_t payload_capacity() const { return payload_capacity_; }
  uint32_t num_segments() const { return num_segments_; }
  uint32_t slot_bytes() const {
    return payload_capacity_ + sizeof(SegmentFooter);
  }
  size_t total_bytes() const {
    return static_cast<size_t>(slot_bytes()) * num_segments_;
  }

  uint8_t* slot(uint32_t index) const {
    DFI_DCHECK(index < num_segments_);
    return base_ + static_cast<size_t>(index) * slot_bytes();
  }
  uint8_t* payload(uint32_t index) const { return slot(index); }
  SegmentFooter* footer(uint32_t index) const {
    return reinterpret_cast<SegmentFooter*>(slot(index) + payload_capacity_);
  }

  /// Byte offset of slot `index` within the ring region (for RemoteRefs).
  uint64_t slot_offset(uint32_t index) const {
    return static_cast<uint64_t>(index) * slot_bytes();
  }
  uint64_t footer_offset(uint32_t index) const {
    return slot_offset(index) + payload_capacity_;
  }

  /// Reads a footer's flags with DMA-acquire semantics (pairs with the
  /// writer's publication of the final byte).
  uint8_t LoadFlags(uint32_t index) const {
    return rdma::LoadDmaFlag(&footer(index)->flags);
  }

  /// Publishes new flags for a locally-owned footer after plain stores to
  /// the rest of the footer/payload.
  void StoreFlags(uint32_t index, uint8_t flags) const {
    rdma::StoreDmaFlag(&footer(index)->flags, flags);
  }

 private:
  uint8_t* base_ = nullptr;
  uint32_t payload_capacity_ = 0;
  uint32_t num_segments_ = 0;
};

}  // namespace dfi

#endif  // DFI_CORE_SEGMENT_H_
