#include "net/link.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"

namespace dfi::net {

LinkScheduler::LinkScheduler(std::string name, double bytes_per_ns)
    : name_(std::move(name)),
      ns_per_byte_(1.0 / bytes_per_ns),
      bytes_per_ns_(bytes_per_ns) {
  DFI_CHECK_GT(bytes_per_ns, 0.0);
}

TransferWindow LinkScheduler::Reserve(SimTime ready, uint64_t bytes) {
  double ns_per_byte = ns_per_byte_;
  if (rate_probe_) {
    // Probe outside mu_: the probe may take the fault plan's lock.
    const double factor = std::clamp(rate_probe_(ready), 1e-6, 1.0);
    ns_per_byte /= factor;
  }
  const SimTime duration = static_cast<SimTime>(
      std::llround(static_cast<double>(bytes) * ns_per_byte));
  std::lock_guard<std::mutex> lock(mu_);
  busy_time_ += duration;
  total_bytes_ += bytes;

  // First-fit backfill: use the earliest idle gap that fits. Skipped
  // entirely — with identical results — when no gap can fit: every gap
  // ends below busy_until_, so ready >= busy_until_ rules them all out,
  // and max_gap_len_ bounds the longest gap from above.
  if (ready < busy_until_ && duration <= max_gap_len_) {
    // Gaps wholly before `ready` cannot serve this reservation (though a
    // lagging thread may still use them later): start the walk at the
    // first gap ending after `ready` instead of skipping over every stale
    // gap — with many senders on one link the stale prefix dominates.
    auto it = gaps_.lower_bound(ready);
    if (it != gaps_.begin() && std::prev(it)->second > ready) --it;
    for (; it != gaps_.end(); ++it) {
      const SimTime gap_start = it->first;
      const SimTime gap_end = it->second;
      const SimTime start = std::max(ready, gap_start);
      if (start + duration > gap_end) continue;  // does not fit
      const SimTime end = start + duration;
      gaps_.erase(it);
      if (start > gap_start) gaps_.emplace(gap_start, start);
      if (end < gap_end) gaps_.emplace(end, gap_end);
      return {start, end};
    }
  }

  // Append at the tail, remembering any idle gap created before it.
  const SimTime start = std::max(ready, busy_until_);
  const SimTime end = start + duration;
  if (start > busy_until_) {
    gaps_.emplace(busy_until_, start);
    max_gap_len_ = std::max(max_gap_len_, start - busy_until_);
    if (gaps_.size() > kMaxGaps) gaps_.erase(gaps_.begin());
  }
  busy_until_ = end;
  return {start, end};
}

SimTime LinkScheduler::busy_until() const {
  std::lock_guard<std::mutex> lock(mu_);
  return busy_until_;
}

uint64_t LinkScheduler::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_;
}

SimTime LinkScheduler::busy_time() const {
  std::lock_guard<std::mutex> lock(mu_);
  return busy_time_;
}

}  // namespace dfi::net
