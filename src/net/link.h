#ifndef DFI_NET_LINK_H_
#define DFI_NET_LINK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "common/sim_time.h"

namespace dfi::net {

/// Time window a transmission occupies on a serial resource.
struct TransferWindow {
  SimTime start = 0;
  SimTime end = 0;
};

/// A serial transmission resource in virtual time: a NIC link direction, a
/// multicast group, or any other bandwidth-limited pipe. A transmission of
/// `bytes` ready at virtual time `ready` occupies the earliest idle
/// interval that fits (first-fit with gap backfill):
///
///   start >= ready,  end = start + bytes * ns_per_byte
///
/// Back-to-back reservations model a saturated link; competing
/// reservations from many threads share the link by *virtual* readiness
/// rather than by real-time call order, which keeps results insensitive to
/// host thread scheduling. Incast and fan-out bottlenecks emerge from
/// reserving the corresponding ingress / egress schedulers (DESIGN.md §5).
///
/// Thread-safe; called concurrently by all worker threads.
class LinkScheduler {
 public:
  /// `bytes_per_ns`: capacity (e.g. 12.5 for a 100 Gbps link).
  LinkScheduler(std::string name, double bytes_per_ns);

  LinkScheduler(const LinkScheduler&) = delete;
  LinkScheduler& operator=(const LinkScheduler&) = delete;

  /// Reserves a transmission of `bytes` that may start no earlier than
  /// `ready` (virtual ns). Returns the occupied window.
  TransferWindow Reserve(SimTime ready, uint64_t bytes);

  /// Rate multiplier in (0, 1] queried per reservation at its ready time;
  /// fault plans use this to model link degradation (a 0.1 factor makes
  /// every transfer 10x longer). Install during fabric wiring, before any
  /// traffic; absent probe means full speed with no query cost.
  using RateProbe = std::function<double(SimTime)>;
  void set_rate_probe(RateProbe probe) { rate_probe_ = std::move(probe); }

  /// Virtual time at which the link becomes idle given current reservations.
  SimTime busy_until() const;

  /// Total bytes ever reserved (conservation-law checks in tests).
  uint64_t total_bytes() const;

  /// Total virtual time the link was actually occupied (busy time), which
  /// can be less than busy_until() if there were idle gaps.
  SimTime busy_time() const;

  const std::string& name() const { return name_; }
  double bytes_per_ns() const { return bytes_per_ns_; }

 private:
  const std::string name_;
  const double ns_per_byte_;
  const double bytes_per_ns_;
  RateProbe rate_probe_;

  mutable std::mutex mu_;
  SimTime busy_until_ = 0;
  SimTime busy_time_ = 0;
  uint64_t total_bytes_ = 0;
  /// Idle intervals (start -> end) left behind by out-of-order
  /// reservations, available for backfill. Bounded (oldest dropped).
  /// Invariant: every gap lies strictly below busy_until_.
  std::map<SimTime, SimTime> gaps_;
  /// Upper bound on the length of the longest gap in gaps_ (lengths only
  /// shrink on split/erase, so the bound stays valid without recomputing).
  /// Lets Reserve skip the first-fit walk outright for transmissions
  /// longer than any gap — the common case once a link saturates and gaps
  /// are sub-segment slivers.
  SimTime max_gap_len_ = 0;
  static constexpr size_t kMaxGaps = 128;
};

}  // namespace dfi::net

#endif  // DFI_NET_LINK_H_
