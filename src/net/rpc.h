#ifndef DFI_NET_RPC_H_
#define DFI_NET_RPC_H_

#include <cstdint>

#include "common/sim_time.h"
#include "common/status.h"

namespace dfi::net {

class Fabric;
using NodeId = uint32_t;  // mirrors fault_plan.h (no include cycle)

/// Outcome of one deterministic virtual-time request/reply exchange.
struct RpcOutcome {
  /// The request reached the server node (alive and reachable on arrival).
  bool delivered = false;
  /// The reply reached the client (the server survived service + send).
  bool replied = false;
  /// Virtual time the request arrives at the server (valid if delivered).
  SimTime request_arrive = 0;
  /// Virtual time the exchange resolves at the client: reply arrival on
  /// success, or the failure-observation time (probe round trip) when the
  /// server was dead, unreachable, or died mid-service.
  SimTime complete_at = 0;
  /// Why the exchange failed (kUnavailable: dead/unreachable/mid-service
  /// crash — the client cannot distinguish these, it only sees silence).
  Status error = Status::OK();
};

/// Virtual-time cost and failure model for small control-plane RPCs over
/// the emulated fabric. Every answer is a pure function of (fabric config,
/// fault plan, virtual times, payload sizes) — no hidden state, no RNG —
/// so the same fault plan yields the same RPC outcomes on every run at any
/// worker-pool size (the engine's determinism contract).
///
/// A null fabric gives the zero-cost loopback used by in-process tests and
/// the default DfiRuntime: always delivered, always replied, no delay.
class RpcPath {
 public:
  explicit RpcPath(const Fabric* fabric) : fabric_(fabric) {}

  /// One-way latency of a `payload_bytes` message from `from` to `to` at
  /// virtual time `at`: propagation + NIC processing + wire serialization,
  /// stretched by any fault-plan link degradation on either endpoint.
  SimTime HopNs(NodeId from, NodeId to, SimTime at,
                uint32_t payload_bytes) const;

  /// Full request/reply exchange: request of `request_bytes` sent at
  /// `start`, `serve_ns` of service time at the server, reply of
  /// `reply_bytes`. Checks the fault plan at every virtual step: request
  /// arrival (dead or partitioned server → silence), service completion
  /// (mid-service crash → silence), reply arrival. On silence the client
  /// observes failure at `start + 2 * hop` — the cost of the probe round
  /// trip that discovered it; retry/backoff policy is the caller's.
  RpcOutcome RoundTrip(NodeId from, NodeId to, SimTime start,
                       SimTime serve_ns, uint32_t request_bytes,
                       uint32_t reply_bytes) const;

  /// True when the loopback model is active (no fabric bound).
  bool loopback() const { return fabric_ == nullptr; }

 private:
  const Fabric* const fabric_;
};

}  // namespace dfi::net

#endif  // DFI_NET_RPC_H_
