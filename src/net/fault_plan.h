#ifndef DFI_NET_FAULT_PLAN_H_
#define DFI_NET_FAULT_PLAN_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sim_time.h"

namespace dfi::net {

using NodeId = uint32_t;  // mirrors fabric.h (no include cycle)

/// Kinds of scripted fault events.
enum class FaultEventType : uint8_t {
  kNodeCrash,    // node stops responding at `at` (fail-stop)
  kLinkDegrade,  // node's NIC links run at `value` Gbps from `at`
  kLinkRestore,  // node's NIC links return to full speed at `at`
  kLossBurst,    // extra UD loss probability `value` during [`at`, `until`)
  kPartition,    // `island` unreachable from the rest from `at`
  kHeal,         // all partitions removed at `at`
};

/// One scheduled fault. `seq` is the insertion index; (at, seq) totally
/// orders the trace, so two identically-built plans produce identical
/// event traces regardless of wall-clock scheduling.
struct FaultEvent {
  SimTime at = 0;
  FaultEventType type = FaultEventType::kNodeCrash;
  NodeId node = UINT32_MAX;
  double value = 0.0;
  SimTime until = 0;
  std::vector<NodeId> island;
  uint64_t seq = 0;
};

/// Deterministic, virtual-time-scheduled fault injector. A plan is a script
/// of events (crash node 2 at t=2ms, degrade node 0 to 10 Gbps, a 30% loss
/// burst between 1ms and 1.5ms, partition {3,4} away, heal); the fabric,
/// switch and queue pairs consult it at the *virtual* times of their
/// operations, so the same plan plus the same seed yields the same failure
/// behavior on every run — host thread scheduling does not matter:
///
///   - queries are pure functions of (plan, virtual time);
///   - randomized decisions (loss) hash (seed, message key) instead of
///     drawing from a shared RNG whose draw order depends on thread timing.
///
/// Schedule all events before starting the workload; queries are
/// thread-safe and cheap (an inactive plan short-circuits on an atomic).
class FaultPlan {
 public:
  static constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

  explicit FaultPlan(uint64_t seed = 0x5eed) : seed_(seed) {}

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  // ---- Scripting ---------------------------------------------------------

  /// Fail-stop crash: from virtual time `at` the node accepts no RDMA ops,
  /// UD deliveries to it vanish, and peers observe kPeerFailed.
  void CrashNode(NodeId node, SimTime at);

  /// Degrades both link directions of `node` to `gbps` from `at`.
  void DegradeLink(NodeId node, SimTime at, double gbps);

  /// Restores `node`'s links to full speed from `at`.
  void RestoreLink(NodeId node, SimTime at);

  /// Adds `probability` extra per-delivery multicast loss in [from, until).
  void LossBurst(SimTime from, SimTime until, double probability);

  /// Partitions `island` from the rest of the cluster at `at`.
  void Partition(std::vector<NodeId> island, SimTime at);

  /// Removes all partitions at `at`.
  void Heal(SimTime at);

  // ---- Queries (all pure in virtual time) --------------------------------

  /// True once any event has been scheduled; the fast path for fault-free
  /// runs, which must pay nothing beyond one relaxed atomic load.
  bool active() const { return active_.load(std::memory_order_relaxed); }

  bool NodeAlive(NodeId node, SimTime at) const;
  /// Virtual crash time of `node`, or kNever.
  SimTime CrashTime(NodeId node) const;

  /// False iff an active partition at `at` separates `a` from `b`.
  bool Reachable(NodeId a, NodeId b, SimTime at) const;

  /// Link rate multiplier in (0, 1] for `node` at `at` given the nominal
  /// `base_gbps` (1.0 when undegraded).
  double LinkRateFactor(NodeId node, SimTime at, double base_gbps) const;

  /// Extra loss probability from bursts covering `at`.
  double LossBoost(SimTime at) const;

  /// True once any loss burst was scheduled (regardless of its window).
  /// Consumers use this to decide whether a stalled head-of-line sequence
  /// can have been lost at all, or is merely still in flight.
  bool HasLossBursts() const {
    return has_loss_bursts_.load(std::memory_order_relaxed);
  }

  /// Deterministic Bernoulli(probability) decision for the delivery
  /// identified by `key` (e.g. hash of sequence number and target).
  bool ShouldDropDelivery(uint64_t key, double probability) const;

  /// The scheduled events sorted by (virtual time, insertion order) — the
  /// canonical deterministic trace of the run.
  std::vector<FaultEvent> Events() const;
  /// Renders Events() as one line per event ("@2000000ns crash node=2").
  std::string TraceString() const;

  uint64_t seed() const { return seed_; }

 private:
  void Append(FaultEvent e);

  const uint64_t seed_;
  std::atomic<bool> active_{false};
  std::atomic<bool> has_loss_bursts_{false};
  mutable std::mutex mu_;
  std::vector<FaultEvent> events_;
  std::unordered_map<NodeId, SimTime> crash_time_;
};

}  // namespace dfi::net

#endif  // DFI_NET_FAULT_PLAN_H_
