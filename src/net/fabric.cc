#include "net/fabric.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace dfi::net {

Node::Node(NodeId id, std::string address, const SimConfig& config)
    : id_(id),
      address_(std::move(address)),
      egress_("egress:" + address_, config.LinkBytesPerNs()),
      ingress_("ingress:" + address_, config.LinkBytesPerNs()) {}

Switch::Switch(const SimConfig& config) : config_(config) {}

MulticastGroupId Switch::CreateGroup() {
  std::lock_guard<std::mutex> lock(mu_);
  const MulticastGroupId id = static_cast<MulticastGroupId>(groups_.size());
  Group g;
  g.resource = std::make_unique<LinkScheduler>(
      "mcgroup:" + std::to_string(id), config_.MulticastGroupBytesPerNs());
  groups_.push_back(std::move(g));
  return id;
}

Status Switch::JoinGroup(MulticastGroupId group, NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  if (group >= groups_.size()) {
    return Status::NotFound("multicast group " + std::to_string(group));
  }
  for (NodeId m : groups_[group].members) {
    if (m == node) return Status::OK();  // idempotent join
  }
  groups_[group].members.push_back(node);
  return Status::OK();
}

std::vector<NodeId> Switch::GroupMembers(MulticastGroupId group) const {
  std::lock_guard<std::mutex> lock(mu_);
  DFI_CHECK_LT(group, groups_.size());
  return groups_[group].members;
}

TransferWindow Switch::ReserveGroup(MulticastGroupId group, SimTime ready,
                                    uint64_t bytes) {
  LinkScheduler* resource;
  {
    std::lock_guard<std::mutex> lock(mu_);
    DFI_CHECK_LT(group, groups_.size());
    resource = groups_[group].resource.get();
  }
  return resource->Reserve(ready, bytes);
}

bool Switch::ShouldDropDelivery(uint64_t key, NodeId target,
                                SimTime at) const {
  double p = config_.multicast_loss_probability;
  if (fault_plan_ != nullptr) p += fault_plan_->LossBoost(at);
  if (p <= 0.0) return false;
  p = std::min(p, 1.0);
  const uint64_t h = SplitMix64(config_.loss_seed ^ SplitMix64(key) ^
                                (static_cast<uint64_t>(target) << 32));
  return static_cast<double>(h >> 11) * 0x1.0p-53 < p;
}

bool Switch::ShouldReorderDelivery(uint64_t key, NodeId target) const {
  const double p = config_.multicast_reorder_probability;
  if (p <= 0.0) return false;
  // Distinct stream from the drop decision (different seed constant).
  const uint64_t h =
      SplitMix64((config_.loss_seed ^ 0x7e07de7ull) ^ SplitMix64(key) ^
                 (static_cast<uint64_t>(target) << 32));
  return static_cast<double>(h >> 11) * 0x1.0p-53 < std::min(p, 1.0);
}

size_t Switch::group_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return groups_.size();
}

Fabric::Fabric(SimConfig config)
    : config_(config), fault_plan_(config_.loss_seed), switch_(config_) {
  switch_.set_fault_plan(&fault_plan_);
}

StatusOr<NodeId> Fabric::AddNode(const std::string& address) {
  std::lock_guard<std::mutex> lock(mu_);
  if (by_address_.count(address) != 0) {
    return Status::AlreadyExists("node address " + address);
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(id, address, config_));
  by_address_[address] = id;
  // Degraded-link modeling: every reservation on this node's links asks the
  // fault plan for the rate factor at its ready time. No-op (and nearly
  // free) while the plan is empty.
  Node* n = nodes_.back().get();
  const double base_gbps = config_.link_gbps;
  auto probe = [this, id, base_gbps](SimTime at) {
    return fault_plan_.LinkRateFactor(id, at, base_gbps);
  };
  n->egress().set_rate_probe(probe);
  n->ingress().set_rate_probe(probe);
  return id;
}

std::vector<NodeId> Fabric::AddNodes(size_t n) {
  std::vector<NodeId> ids;
  ids.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto id = AddNode("10.0.0." + std::to_string(node_count() + 1));
    DFI_CHECK(id.ok()) << id.status();
    ids.push_back(*id);
  }
  return ids;
}

Node& Fabric::node(NodeId id) {
  std::lock_guard<std::mutex> lock(mu_);
  DFI_CHECK_LT(id, nodes_.size());
  return *nodes_[id];
}

const Node& Fabric::node(NodeId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  DFI_CHECK_LT(id, nodes_.size());
  return *nodes_[id];
}

StatusOr<NodeId> Fabric::ResolveAddress(const std::string& address) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_address_.find(address);
  if (it == by_address_.end()) {
    return Status::NotFound("node address " + address);
  }
  return it->second;
}

size_t Fabric::node_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_.size();
}

}  // namespace dfi::net
