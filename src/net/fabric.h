#ifndef DFI_NET_FABRIC_H_
#define DFI_NET_FABRIC_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "net/fault_plan.h"
#include "net/link.h"
#include "net/sim_config.h"

namespace dfi::net {

// NodeId itself lives in fault_plan.h (included above) to avoid a cycle.
inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// Identifies one multicast group on the switch.
using MulticastGroupId = uint32_t;

/// One emulated cluster node: a host with one NIC. Both link directions are
/// modeled (full duplex), matching one InfiniBand EDR port.
class Node {
 public:
  Node(NodeId id, std::string address, const SimConfig& config);

  NodeId id() const { return id_; }
  const std::string& address() const { return address_; }

  /// Link from this node's NIC into the switch.
  LinkScheduler& egress() { return egress_; }
  /// Link from the switch into this node's NIC.
  LinkScheduler& ingress() { return ingress_; }

  /// Registered-memory accounting (paper section 6.1.4). Deregistering more
  /// than is registered would wrap the unsigned counter and poison every
  /// later reading; debug builds assert, release builds clamp to zero.
  void AddRegisteredBytes(uint64_t bytes) { registered_bytes_ += bytes; }
  void SubRegisteredBytes(uint64_t bytes) {
    uint64_t cur = registered_bytes_.load(std::memory_order_relaxed);
    assert(cur >= bytes && "SubRegisteredBytes underflow");
    while (!registered_bytes_.compare_exchange_weak(
        cur, cur >= bytes ? cur - bytes : 0, std::memory_order_relaxed)) {
    }
  }
  uint64_t registered_bytes() const { return registered_bytes_.load(); }

 private:
  const NodeId id_;
  const std::string address_;
  LinkScheduler egress_;
  LinkScheduler ingress_;
  std::atomic<uint64_t> registered_bytes_{0};
};

/// The single switch connecting all nodes. Hosts multicast groups: each
/// group is a serial resource (paper: multiple sender threads within one
/// group do not scale) that replicates a message to all member ingress
/// links. Can inject per-delivery losses for UD traffic.
class Switch {
 public:
  explicit Switch(const SimConfig& config);

  MulticastGroupId CreateGroup();
  Status JoinGroup(MulticastGroupId group, NodeId node);
  std::vector<NodeId> GroupMembers(MulticastGroupId group) const;

  /// Serializes a multicast message on the group resource.
  TransferWindow ReserveGroup(MulticastGroupId group, SimTime ready,
                              uint64_t bytes);

  /// Deterministic per-delivery drop decision: hashes (loss seed, `key`,
  /// `target`) against the configured loss probability plus any fault-plan
  /// loss burst active at virtual time `at`. The outcome does not depend on
  /// the order threads reach the switch, so a given seed + plan drops the
  /// same deliveries on every run (the old RNG-based ShouldDrop() drew from
  /// a shared stream in arrival order and broke that contract; it is gone).
  bool ShouldDropDelivery(uint64_t key, NodeId target, SimTime at) const;

  /// Same hashing scheme for reorder injection (delays one delivery past
  /// its successor; see UdQueuePair::Deliver).
  bool ShouldReorderDelivery(uint64_t key, NodeId target) const;

  void set_fault_plan(const FaultPlan* plan) { fault_plan_ = plan; }

  size_t group_count() const;

 private:
  struct Group {
    std::unique_ptr<LinkScheduler> resource;
    std::vector<NodeId> members;
  };

  const SimConfig& config_;
  const FaultPlan* fault_plan_ = nullptr;
  mutable std::mutex mu_;
  std::vector<Group> groups_;
};

/// The emulated cluster: node directory + switch + configuration. One
/// Fabric instance is one experiment environment; all DFI / verbs / MPI
/// objects hang off it.
class Fabric {
 public:
  explicit Fabric(SimConfig config = SimConfig());

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Adds a node with a unique address (e.g. "192.168.0.1"). Addresses are
  /// free-form strings; DFI's "ip|threadId" notation resolves against them.
  StatusOr<NodeId> AddNode(const std::string& address);

  /// Convenience: adds `n` nodes named "10.0.0.<i>".
  std::vector<NodeId> AddNodes(size_t n);

  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  StatusOr<NodeId> ResolveAddress(const std::string& address) const;
  size_t node_count() const;

  Switch& network_switch() { return switch_; }
  const SimConfig& config() const { return config_; }

  /// The fabric's fault script (empty by default). Schedule events before
  /// starting the workload; every layer (links, switch, queue pairs, DFI
  /// blocking paths) consults it at virtual operation times.
  FaultPlan& fault_plan() { return fault_plan_; }
  const FaultPlan& fault_plan() const { return fault_plan_; }

 private:
  const SimConfig config_;
  FaultPlan fault_plan_;
  Switch switch_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<std::string, NodeId> by_address_;
};

}  // namespace dfi::net

#endif  // DFI_NET_FABRIC_H_
