#ifndef DFI_NET_SIM_CONFIG_H_
#define DFI_NET_SIM_CONFIG_H_

#include <cstdint>

#include "common/sim_time.h"

namespace dfi::net {

/// Calibration constants of the virtual-time performance model.
///
/// The defaults model the paper's evaluation platform: InfiniBand EDR
/// (100 Gbps per NIC and direction), ConnectX-5-like verb overheads, and
/// CPU costs such that a single worker thread processes roughly 10 GiB/s of
/// tuples — the ratios that produce the saturation/crossover shapes of the
/// paper's figures. See DESIGN.md section 5 for the rationale of each knob.
struct SimConfig {
  // ---- Link model -------------------------------------------------------
  /// Per-NIC link speed, each direction (100 Gbps EDR).
  double link_gbps = 100.0;
  /// One-way propagation incl. switch traversal for an RC packet.
  SimTime propagation_ns = 600;
  /// NIC work-queue-element processing before a message hits the wire.
  SimTime nic_process_ns = 250;

  // ---- Verb CPU costs ---------------------------------------------------
  /// CPU cost to post any work request (doorbell + WQE build).
  SimTime post_wqe_ns = 80;
  /// Extra CPU cost when the payload is inlined into the WQE, per byte.
  double inline_copy_ns_per_byte = 0.2;
  /// Payloads at or below this size may be sent inline.
  uint32_t max_inline_bytes = 220;
  /// CPU cost of one completion-queue poll.
  SimTime poll_cq_ns = 40;

  // ---- One-sided read / atomics -----------------------------------------
  /// Extra one-way cost of READ/FETCH_ADD response generation at the
  /// responder NIC (no CPU involved).
  SimTime read_response_ns = 150;

  // ---- Unreliable datagram / multicast ------------------------------------
  /// Per-message CPU+NIC overhead of a UD send (higher than RC writes:
  /// address handles, no RC offloads).
  SimTime ud_send_overhead_ns = 450;
  /// Effective serialization rate of one multicast group inside the switch.
  /// Models the NIC/switch property that multiple sender threads in the
  /// same group do not scale (paper section 6.1.2): the group is a single
  /// serial resource slightly below link speed.
  double multicast_group_gbps = 68.0;
  /// Probability that one multicast delivery (per target) is dropped.
  double multicast_loss_probability = 0.0;
  /// Probability that one multicast delivery (per target) is delayed past
  /// its successor, arriving out of order at the receiver. Requires a flow
  /// configuration that tolerates reordering (global ordering / gap
  /// handling), like loss does.
  double multicast_reorder_probability = 0.0;
  /// Maximum UD payload (InfiniBand MTU); larger sends are rejected.
  uint32_t ud_mtu_bytes = 4096;
  /// Seed for loss injection.
  uint64_t loss_seed = 0x5eed;

  // ---- DFI cost model (charged by the core library) ----------------------
  /// Fixed CPU cost per tuple pushed into a flow (routing + bookkeeping).
  SimTime tuple_push_fixed_ns = 12;
  /// Per-byte CPU cost of staging a tuple into a send segment (~12.5 GiB/s
  /// single-thread copy bandwidth).
  double tuple_copy_ns_per_byte = 0.08;
  /// Fixed CPU cost of one consume() call that returns a segment.
  SimTime consume_segment_fixed_ns = 60;
  /// Fixed CPU cost of iterating one tuple out of a consumed segment.
  SimTime tuple_consume_fixed_ns = 8;
  /// Fixed CPU cost of scanning one ring that had nothing consumable.
  SimTime consume_poll_ns = 25;
  /// Source-side cost of sealing + transmitting one segment.
  SimTime segment_seal_ns = 110;
  /// Combiner flows: per-tuple cost of the target-side aggregation update
  /// (hash of the group key + accumulator update).
  SimTime agg_update_ns = 14;

  // ---- Mini-MPI cost model ------------------------------------------------
  /// Per-message software overhead of MPI_Send/MPI_Recv (matching, request
  /// bookkeeping) — far above a raw verb post.
  SimTime mpi_msg_overhead_ns = 350;
  /// Messages larger than this use the rendezvous protocol (extra RTT).
  uint32_t mpi_eager_threshold = 8192;
  /// Hold time of the global MPI latch in MPI_THREAD_MULTIPLE mode.
  SimTime mpi_latch_hold_ns = 300;
  /// Additional latch hold per contending thread (cache-line bouncing);
  /// this makes multi-threaded MPI *degrade* with thread count as measured
  /// in the paper (Figure 10b).
  SimTime mpi_latch_bounce_ns = 120;
  /// Extra per-message cost when crossing process boundaries via shared
  /// memory in multi-process mode.
  SimTime mpi_shm_copy_extra_ns = 40;

  // ---- Derived ------------------------------------------------------------
  double LinkBytesPerNs() const { return link_gbps / 8.0; }
  double MulticastGroupBytesPerNs() const { return multicast_group_gbps / 8.0; }
  /// Maximum link speed in bytes/second (the red line in the paper's plots).
  double MaxLinkBytesPerSecond() const { return link_gbps / 8.0 * 1e9; }
};

}  // namespace dfi::net

#endif  // DFI_NET_SIM_CONFIG_H_
