#include "net/rpc.h"

#include <algorithm>

#include "net/fabric.h"

namespace dfi::net {

SimTime RpcPath::HopNs(NodeId from, NodeId to, SimTime at,
                       uint32_t payload_bytes) const {
  if (fabric_ == nullptr) return 0;
  const SimConfig& cfg = fabric_->config();
  const FaultPlan& plan = fabric_->fault_plan();
  // Wire time at the slower of the two endpoint links (a degraded NIC on
  // either side throttles the whole path).
  double gbps = cfg.link_gbps;
  if (plan.active()) {
    const double f =
        std::min(plan.LinkRateFactor(from, at, cfg.link_gbps),
                 plan.LinkRateFactor(to, at, cfg.link_gbps));
    gbps *= std::max(f, 1e-6);
  }
  const SimTime wire_ns =
      static_cast<SimTime>(payload_bytes * 8.0 / gbps);  // bits / (Gb/s) = ns
  return cfg.propagation_ns + cfg.nic_process_ns + wire_ns;
}

RpcOutcome RpcPath::RoundTrip(NodeId from, NodeId to, SimTime start,
                              SimTime serve_ns, uint32_t request_bytes,
                              uint32_t reply_bytes) const {
  RpcOutcome out;
  if (fabric_ == nullptr) {
    out.delivered = true;
    out.replied = true;
    out.request_arrive = start;
    out.complete_at = start + serve_ns;
    return out;
  }
  const FaultPlan& plan = fabric_->fault_plan();
  const SimTime req_hop = HopNs(from, to, start, request_bytes);
  const SimTime t_arrive = start + req_hop;
  // Silence is observed after one full probe round trip, whatever went
  // wrong on the far side.
  const SimTime observe_silence = start + 2 * req_hop;
  if (plan.active() && (!plan.NodeAlive(to, t_arrive) ||
                        !plan.Reachable(from, to, t_arrive))) {
    out.complete_at = observe_silence;
    out.error = Status::Unavailable("rpc target node " + std::to_string(to) +
                                    " dead or unreachable");
    return out;
  }
  out.delivered = true;
  out.request_arrive = t_arrive;
  const SimTime t_served = t_arrive + serve_ns;
  if (plan.active() && !plan.NodeAlive(to, t_served)) {
    out.complete_at = std::max(observe_silence, t_served);
    out.error = Status::Unavailable("rpc target node " + std::to_string(to) +
                                    " crashed mid-service");
    return out;
  }
  const SimTime reply_hop = HopNs(to, from, t_served, reply_bytes);
  const SimTime t_reply = t_served + reply_hop;
  if (plan.active() && !plan.Reachable(to, from, t_served)) {
    out.complete_at = std::max(observe_silence, t_served);
    out.error = Status::Unavailable("rpc reply path partitioned");
    return out;
  }
  out.replied = true;
  out.complete_at = t_reply;
  return out;
}

}  // namespace dfi::net
