#include "net/fault_plan.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "common/random.h"

namespace dfi::net {

void FaultPlan::Append(FaultEvent e) {
  std::lock_guard<std::mutex> lock(mu_);
  e.seq = events_.size();
  events_.push_back(std::move(e));
  active_.store(true, std::memory_order_relaxed);
}

void FaultPlan::CrashNode(NodeId node, SimTime at) {
  FaultEvent e;
  e.at = at;
  e.type = FaultEventType::kNodeCrash;
  e.node = node;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = crash_time_.find(node);
    if (it == crash_time_.end()) {
      crash_time_[node] = at;
    } else {
      it->second = std::min(it->second, at);
    }
  }
  Append(std::move(e));
}

void FaultPlan::DegradeLink(NodeId node, SimTime at, double gbps) {
  DFI_CHECK_GT(gbps, 0.0);
  FaultEvent e;
  e.at = at;
  e.type = FaultEventType::kLinkDegrade;
  e.node = node;
  e.value = gbps;
  Append(std::move(e));
}

void FaultPlan::RestoreLink(NodeId node, SimTime at) {
  FaultEvent e;
  e.at = at;
  e.type = FaultEventType::kLinkRestore;
  e.node = node;
  Append(std::move(e));
}

void FaultPlan::LossBurst(SimTime from, SimTime until, double probability) {
  DFI_CHECK_GE(probability, 0.0);
  DFI_CHECK_LE(probability, 1.0);
  DFI_CHECK_LT(from, until);
  FaultEvent e;
  e.at = from;
  e.type = FaultEventType::kLossBurst;
  e.value = probability;
  e.until = until;
  if (probability > 0.0) {
    has_loss_bursts_.store(true, std::memory_order_relaxed);
  }
  Append(std::move(e));
}

void FaultPlan::Partition(std::vector<NodeId> island, SimTime at) {
  FaultEvent e;
  e.at = at;
  e.type = FaultEventType::kPartition;
  e.island = std::move(island);
  Append(std::move(e));
}

void FaultPlan::Heal(SimTime at) {
  FaultEvent e;
  e.at = at;
  e.type = FaultEventType::kHeal;
  Append(std::move(e));
}

bool FaultPlan::NodeAlive(NodeId node, SimTime at) const {
  if (!active()) return true;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = crash_time_.find(node);
  return it == crash_time_.end() || at < it->second;
}

SimTime FaultPlan::CrashTime(NodeId node) const {
  if (!active()) return kNever;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = crash_time_.find(node);
  return it == crash_time_.end() ? kNever : it->second;
}

bool FaultPlan::Reachable(NodeId a, NodeId b, SimTime at) const {
  if (a == b) return true;
  if (!active()) return true;
  std::lock_guard<std::mutex> lock(mu_);
  // Replay partition/heal events up to `at` (plans are short scripts, so a
  // linear replay beats maintaining interval structures).
  bool separated = false;
  for (const FaultEvent& e : events_) {
    if (e.at > at) continue;
    if (e.type == FaultEventType::kHeal) {
      separated = false;
    } else if (e.type == FaultEventType::kPartition) {
      const bool a_in =
          std::find(e.island.begin(), e.island.end(), a) != e.island.end();
      const bool b_in =
          std::find(e.island.begin(), e.island.end(), b) != e.island.end();
      if (a_in != b_in) separated = true;
    }
  }
  return !separated;
}

double FaultPlan::LinkRateFactor(NodeId node, SimTime at,
                                 double base_gbps) const {
  if (!active()) return 1.0;
  std::lock_guard<std::mutex> lock(mu_);
  // Latest degrade/restore for this node at or before `at` wins.
  double gbps = base_gbps;
  SimTime latest = -1;
  for (const FaultEvent& e : events_) {
    if (e.node != node || e.at > at || e.at < latest) continue;
    if (e.type == FaultEventType::kLinkDegrade) {
      latest = e.at;
      gbps = e.value;
    } else if (e.type == FaultEventType::kLinkRestore) {
      latest = e.at;
      gbps = base_gbps;
    }
  }
  if (gbps >= base_gbps) return 1.0;
  return std::max(gbps / base_gbps, 1e-6);
}

double FaultPlan::LossBoost(SimTime at) const {
  if (!active()) return 0.0;
  std::lock_guard<std::mutex> lock(mu_);
  double boost = 0.0;
  for (const FaultEvent& e : events_) {
    if (e.type != FaultEventType::kLossBurst) continue;
    if (at >= e.at && at < e.until) boost = std::max(boost, e.value);
  }
  return boost;
}

bool FaultPlan::ShouldDropDelivery(uint64_t key, double probability) const {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  const uint64_t h = SplitMix64(seed_ ^ SplitMix64(key));
  // Map the top 53 bits to [0, 1) — the standard double-from-bits trick.
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < probability;
}

std::vector<FaultEvent> FaultPlan::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FaultEvent> out = events_;
  std::sort(out.begin(), out.end(), [](const FaultEvent& a,
                                       const FaultEvent& b) {
    return a.at != b.at ? a.at < b.at : a.seq < b.seq;
  });
  return out;
}

std::string FaultPlan::TraceString() const {
  std::ostringstream os;
  for (const FaultEvent& e : Events()) {
    os << "@" << e.at << "ns ";
    switch (e.type) {
      case FaultEventType::kNodeCrash:
        os << "crash node=" << e.node;
        break;
      case FaultEventType::kLinkDegrade:
        os << "degrade node=" << e.node << " gbps=" << e.value;
        break;
      case FaultEventType::kLinkRestore:
        os << "restore node=" << e.node;
        break;
      case FaultEventType::kLossBurst:
        os << "loss-burst p=" << e.value << " until=" << e.until << "ns";
        break;
      case FaultEventType::kPartition: {
        os << "partition island={";
        for (size_t i = 0; i < e.island.size(); ++i) {
          if (i > 0) os << ",";
          os << e.island[i];
        }
        os << "}";
        break;
      }
      case FaultEventType::kHeal:
        os << "heal";
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace dfi::net
