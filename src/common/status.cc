#include "common/status.h"

namespace dfi {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kPeerFailed:
      return "PeerFailed";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace dfi
