#ifndef DFI_COMMON_LOGGING_H_
#define DFI_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace dfi {

/// Log severities; kFatal aborts the process after emitting the message.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the minimum severity that is emitted (default kInfo). Thread-safe.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-collecting helper behind the DFI_LOG macros. Emits on destruction;
/// aborts for kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the log statement is disabled.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace dfi

#define DFI_LOG_INTERNAL(level) \
  ::dfi::internal::LogMessage(level, __FILE__, __LINE__).stream()

/// Usage: DFI_LOG(INFO) << "message";
#define DFI_LOG(severity) DFI_LOG_##severity
#define DFI_LOG_DEBUG DFI_LOG_INTERNAL(::dfi::LogLevel::kDebug)
#define DFI_LOG_INFO DFI_LOG_INTERNAL(::dfi::LogLevel::kInfo)
#define DFI_LOG_WARNING DFI_LOG_INTERNAL(::dfi::LogLevel::kWarning)
#define DFI_LOG_ERROR DFI_LOG_INTERNAL(::dfi::LogLevel::kError)
#define DFI_LOG_FATAL DFI_LOG_INTERNAL(::dfi::LogLevel::kFatal)

/// Invariant check, active in all build modes (database-engine idiom: an
/// inconsistent flow state must never be silently ignored).
#define DFI_CHECK(cond)                                             \
  (cond) ? (void)0                                                  \
         : ::dfi::internal::LogMessageVoidify() &                   \
               DFI_LOG_INTERNAL(::dfi::LogLevel::kFatal)            \
                   << "Check failed: " #cond " "

#define DFI_CHECK_OK(expr)                                          \
  do {                                                              \
    ::dfi::Status _dfi_check_status = (expr);                       \
    DFI_CHECK(_dfi_check_status.ok()) << _dfi_check_status;         \
  } while (0)

#define DFI_CHECK_EQ(a, b) DFI_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define DFI_CHECK_NE(a, b) DFI_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define DFI_CHECK_LT(a, b) DFI_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define DFI_CHECK_LE(a, b) DFI_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define DFI_CHECK_GT(a, b) DFI_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define DFI_CHECK_GE(a, b) DFI_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define DFI_DCHECK(cond) DFI_CHECK(true)
#else
#define DFI_DCHECK(cond) DFI_CHECK(cond)
#endif

#endif  // DFI_COMMON_LOGGING_H_
