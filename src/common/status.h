#ifndef DFI_COMMON_STATUS_H_
#define DFI_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>

namespace dfi {

/// Error categories for fallible DFI operations. Mirrors the small set of
/// failure classes the library can report; the hot data path never returns a
/// Status (it uses enum result codes instead).
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kResourceExhausted,
  kUnavailable,
  kInternal,
  kUnimplemented,
  kDeadlineExceeded,
  kPeerFailed,
  kAborted,
};

/// Returns a stable human-readable name ("Ok", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Value-semantic error type used throughout DFI instead of exceptions
/// (Google/Arrow/RocksDB idiom). An OK status carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status PeerFailed(std::string msg) {
    return Status(StatusCode::kPeerFailed, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Union of a Status and a value; holds the value iff status().ok().
/// Minimal analogue of absl::StatusOr, sufficient for DFI's APIs.
template <typename T>
class StatusOr {
 public:
  /// Implicitly constructible from an error Status (must not be OK) ...
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {}
  /// ... or from a value.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)), has_value_(true) {}

  bool ok() const { return has_value_; }
  const Status& status() const { return status_; }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

  const T& operator*() const& { return value_; }
  T& operator*() & { return value_; }
  const T* operator->() const { return &value_; }
  T* operator->() { return &value_; }

 private:
  Status status_;
  T value_{};
  bool has_value_ = false;
};

/// Propagates a non-OK status to the caller.
#define DFI_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::dfi::Status _dfi_status = (expr);        \
    if (!_dfi_status.ok()) return _dfi_status; \
  } while (0)

/// Evaluates a StatusOr expression, propagating errors, else binds the value.
#define DFI_ASSIGN_OR_RETURN(lhs, expr)                  \
  DFI_ASSIGN_OR_RETURN_IMPL(                             \
      DFI_STATUS_MACRO_CONCAT(_dfi_statusor, __LINE__), lhs, expr)
#define DFI_ASSIGN_OR_RETURN_IMPL(var, lhs, expr) \
  auto var = (expr);                              \
  if (!var.ok()) return var.status();             \
  lhs = std::move(var).value()
#define DFI_STATUS_MACRO_CONCAT(x, y) DFI_STATUS_MACRO_CONCAT_IMPL(x, y)
#define DFI_STATUS_MACRO_CONCAT_IMPL(x, y) x##y

}  // namespace dfi

#endif  // DFI_COMMON_STATUS_H_
