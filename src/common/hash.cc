#include "common/hash.h"

#include <cstring>

namespace dfi {

// Resolved once at load time to the widest clone the CPU supports: with
// AVX-512DQ the fmix64 chain (two 64-bit multiplies) vectorizes 8 keys
// wide, which matters because the batched shuffle partitioner funnels every
// 8-byte-key block through here. memcpy loads keep unaligned input legal.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
__attribute__((target_clones("arch=x86-64-v4", "default")))
#endif
void HashKeys8(const void* keys, size_t n, uint64_t* out) {
  const auto* p = static_cast<const unsigned char*>(keys);
  for (size_t i = 0; i < n; ++i) {
    uint64_t k;
    std::memcpy(&k, p + i * 8, 8);
    out[i] = HashU64(k);
  }
}

uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace dfi
