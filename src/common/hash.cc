#include "common/hash.h"

namespace dfi {

uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace dfi
