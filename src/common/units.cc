#include "common/units.h"

#include <cstdio>

namespace dfi {
namespace {

std::string FormatScaled(double value, const char* const* suffixes,
                         int num_suffixes, double step, const char* unit) {
  int idx = 0;
  while (value >= step && idx + 1 < num_suffixes) {
    value /= step;
    ++idx;
  }
  char buf[64];
  if (value == static_cast<uint64_t>(value) && value < 1e15) {
    std::snprintf(buf, sizeof(buf), "%llu %s%s",
                  static_cast<unsigned long long>(value), suffixes[idx], unit);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s%s", value, suffixes[idx], unit);
  }
  return buf;
}

}  // namespace

std::string FormatBytes(uint64_t bytes) {
  static const char* const kSuffixes[] = {"", "Ki", "Mi", "Gi", "Ti"};
  return FormatScaled(static_cast<double>(bytes), kSuffixes, 5, 1024.0, "B");
}

std::string FormatBandwidth(double bytes_per_second) {
  static const char* const kSuffixes[] = {"", "Ki", "Mi", "Gi", "Ti"};
  return FormatScaled(bytes_per_second, kSuffixes, 5, 1024.0, "B/s");
}

std::string FormatDuration(int64_t ns) {
  char buf[64];
  double v = static_cast<double>(ns);
  if (ns < kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%.0f ns", v);
  } else if (ns < kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.2f us", v / kMicrosecond);
  } else if (ns < kSecond) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", v / kMillisecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", v / kSecond);
  }
  return buf;
}

}  // namespace dfi
