#ifndef DFI_COMMON_HASH_H_
#define DFI_COMMON_HASH_H_

#include <bit>
#include <cstddef>
#include <cstdint>

namespace dfi {

/// 64-bit finalizer-quality integer hash (MurmurHash3 fmix64). This is the
/// default key-based shuffle partitioner in DFI (paper section 3.2: "as
/// default a simple key-based hash function is used").
constexpr uint64_t HashU64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdull;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ull;
  k ^= k >> 33;
  return k;
}

/// Hashes an arbitrary byte range (FNV-1a, 64-bit). Used for non-integer
/// shuffle keys.
uint64_t HashBytes(const void* data, size_t len);

/// HashU64 over `n` consecutive unaligned 64-bit keys. Compiled with
/// per-CPU clones so the multiply chain vectorizes on machines with 64-bit
/// SIMD multiplies (AVX-512DQ) — the batched shuffle partitioner hashes
/// whole blocks through this.
void HashKeys8(const void* keys, size_t n, uint64_t* out);

/// Extracts `bits` radix bits from a key after hashing, starting at bit
/// `shift` — the partition function of the radix hash join.
constexpr uint32_t RadixBits(uint64_t key, uint32_t shift, uint32_t bits) {
  return static_cast<uint32_t>((HashU64(key) >> shift) &
                               ((1ull << bits) - 1));
}

/// Exact division/modulo of 64-bit values by a runtime-invariant 32-bit
/// divisor (Granlund & Montgomery, "Division by Invariant Integers using
/// Multiplication", figure 4.1). Routing computes `hash % num_targets` per
/// tuple; precomputing the magic replaces the ~25-cycle hardware divide
/// with two multiplies, with bit-identical results.
class FastDivisor {
 public:
  FastDivisor() : FastDivisor(1) {}
  explicit FastDivisor(uint32_t d) : d_(d) {
    if ((d & (d - 1)) == 0) {
      // Powers of two (including 1) divide with a plain shift and take
      // remainders with a mask.
      magic_ = 0;
      shift_ = static_cast<uint32_t>(std::countr_zero(d));
      mask_ = d - 1;
      return;
    }
    // l = ceil(log2(d)); the 65-bit magic 2^64 + magic_ with implied top
    // bit, recovered by the add-and-halve in Div().
    const uint32_t l = 64u - static_cast<uint32_t>(std::countl_zero(
                                 static_cast<uint64_t>(d)));
    magic_ = static_cast<uint64_t>(
                 (static_cast<unsigned __int128>((1ull << l) - d) << 64) /
                 d) +
             1;
    shift_ = l - 1;
  }

  uint64_t Div(uint64_t n) const {
    if (magic_ == 0) return n >> shift_;
    const uint64_t t = static_cast<uint64_t>(
        (static_cast<unsigned __int128>(magic_) * n) >> 64);
    return (t + ((n - t) >> 1)) >> shift_;
  }
  uint64_t Mod(uint64_t n) const {
    if (magic_ == 0) return n & mask_;
    return n - Div(n) * d_;
  }
  uint32_t divisor() const { return d_; }

  /// True when the divisor is a power of two; Mod is then `n & mask()`,
  /// which callers with hot loops hoist (the branch in Mod is loop-
  /// invariant but opaque to the compiler).
  bool pow2() const { return magic_ == 0; }
  uint64_t mask() const { return mask_; }

 private:
  uint32_t d_;
  uint64_t magic_;  // 0 marks the power-of-two shift/mask path
  uint32_t shift_;
  uint64_t mask_ = 0;  // d - 1 when pow2(), unused otherwise
};

}  // namespace dfi

#endif  // DFI_COMMON_HASH_H_
