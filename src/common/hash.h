#ifndef DFI_COMMON_HASH_H_
#define DFI_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace dfi {

/// 64-bit finalizer-quality integer hash (MurmurHash3 fmix64). This is the
/// default key-based shuffle partitioner in DFI (paper section 3.2: "as
/// default a simple key-based hash function is used").
constexpr uint64_t HashU64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdull;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ull;
  k ^= k >> 33;
  return k;
}

/// Hashes an arbitrary byte range (FNV-1a, 64-bit). Used for non-integer
/// shuffle keys.
uint64_t HashBytes(const void* data, size_t len);

/// Extracts `bits` radix bits from a key after hashing, starting at bit
/// `shift` — the partition function of the radix hash join.
constexpr uint32_t RadixBits(uint64_t key, uint32_t shift, uint32_t bits) {
  return static_cast<uint32_t>((HashU64(key) >> shift) &
                               ((1ull << bits) - 1));
}

}  // namespace dfi

#endif  // DFI_COMMON_HASH_H_
