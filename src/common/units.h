#ifndef DFI_COMMON_UNITS_H_
#define DFI_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace dfi {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

inline constexpr int64_t kMicrosecond = 1000;          // in ns
inline constexpr int64_t kMillisecond = 1000 * 1000;   // in ns
inline constexpr int64_t kSecond = 1000 * 1000 * 1000;  // in ns

/// Converts a link speed in gigabits per second to bytes per nanosecond
/// (the unit LinkScheduler uses). 100 Gbps -> 12.5 B/ns.
constexpr double GbpsToBytesPerNs(double gbps) { return gbps / 8.0; }

/// Formats a byte count as a human-readable string, e.g. "8 KiB", "1.5 GiB".
std::string FormatBytes(uint64_t bytes);

/// Formats a rate in bytes/second as e.g. "11.64 GiB/s".
std::string FormatBandwidth(double bytes_per_second);

/// Formats a duration in nanoseconds as e.g. "1.31 us", "2.5 s".
std::string FormatDuration(int64_t ns);

}  // namespace dfi

#endif  // DFI_COMMON_UNITS_H_
