#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace dfi {

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

void LatencyRecorder::EnsureSorted() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

int64_t LatencyRecorder::Quantile(double q) {
  DFI_CHECK(!samples_.empty());
  DFI_CHECK(q >= 0.0 && q <= 1.0);
  EnsureSorted();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return static_cast<int64_t>(
      std::llround(static_cast<double>(samples_[lo]) * (1.0 - frac) +
                   static_cast<double>(samples_[hi]) * frac));
}

int64_t LatencyRecorder::Min() {
  DFI_CHECK(!samples_.empty());
  EnsureSorted();
  return samples_.front();
}

int64_t LatencyRecorder::Max() {
  DFI_CHECK(!samples_.empty());
  EnsureSorted();
  return samples_.back();
}

double LatencyRecorder::Mean() const {
  if (samples_.empty()) return 0;
  double sum = 0;
  for (int64_t s : samples_) sum += static_cast<double>(s);
  return sum / static_cast<double>(samples_.size());
}

void RunningStat::Add(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += v;
  ++count_;
}

}  // namespace dfi
