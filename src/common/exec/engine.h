#ifndef DFI_COMMON_EXEC_ENGINE_H_
#define DFI_COMMON_EXEC_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/sim_time.h"

namespace dfi::exec {

class Engine;
struct Task;

/// Park list embedded in a blocking primitive (RingSync, ReadyGate, MPI
/// mailboxes). Tasks park here instead of sleeping an OS thread; WakeAll()
/// moves every parked task back to its run queue.
///
/// Lost-wakeup protocol (Dekker-style, see DESIGN.md §engine): a parker
/// increments `nparked_` *before* re-checking the caller's version predicate
/// under the scheduler lock; a notifier bumps its version *before* reading
/// `nparked_`. Both sides use seq_cst, so at least one of them observes the
/// other: either the parker sees the new version and declines to park, or
/// the notifier sees the parker and takes the scheduler lock to wake it.
class WaitPoint {
 public:
  WaitPoint() = default;
  WaitPoint(const WaitPoint&) = delete;
  WaitPoint& operator=(const WaitPoint&) = delete;

  /// Moves every parked task back to its run queue. Cheap when nothing is
  /// parked or no engine is active (one atomic load).
  void WakeAll();

 private:
  friend class Engine;
  std::atomic<uint32_t> nparked_{0};
  std::vector<Task*> waiters_;  // guarded by Engine::mu_
};

/// Why a timed park returned.
enum class WakeCause : uint8_t { kNotified, kTimer };

struct EngineOptions {
  /// Worker pool size; 0 = std::thread::hardware_concurrency().
  uint32_t workers = 0;
  /// Conservative lookahead window in virtual ns: a task may run while its
  /// virtual time is within `lookahead_ns` of the engine-wide floor. Derive
  /// from the minimum link latency (SimConfig::propagation_ns +
  /// SimConfig::nic_process_ns) for network workloads.
  SimTime lookahead_ns = 1000;
  /// Fiber stack size (plus one guard page).
  size_t stack_bytes = 256 * 1024;
};

/// Deterministic work-stealing virtual-time engine. Emulated actors are
/// cooperatively scheduled ucontext fibers with per-domain (per emulated
/// node) run queues ordered by (virtual time, spawn id); a fixed worker
/// pool executes any task whose virtual time lies within a conservative
/// lookahead window of the engine-wide virtual-time floor, stealing the
/// globally minimal task when a worker's own domains drain. Blocking
/// primitives park the fiber (WaitPoint) instead of sleeping the OS thread,
/// so hundreds of emulated nodes run on a handful of host threads.
///
/// Usage:
///   exec::Engine engine({.workers = 2, .lookahead_ns = 850});
///   engine.Spawn(node_id, "source-3", [&] { ... });
///   engine.Run();  // returns when every task has finished
class Engine {
 public:
  /// Sentinel for Park(): no timer, wake on Notify only.
  static constexpr SimTime kNoTimer = -1;

  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Adds a task to `domain`'s run queue (domains are created on demand).
  /// Callable before Run() and from inside a running task.
  void Spawn(uint32_t domain, std::string name, std::function<void()> fn);

  /// Runs until all spawned tasks finish. The calling thread acts as worker
  /// 0, so `workers == 1` uses no extra OS threads.
  void Run();

  uint32_t workers() const { return workers_; }

  /// Engine owning the calling fiber; nullptr on a plain OS thread. This is
  /// the mode switch for the dual-mode blocking primitives.
  static Engine* Current();
  static bool InTask() { return Current() != nullptr; }
  /// Engine currently inside Run(), if any (any calling thread).
  static Engine* Active();

  /// Parks the calling task on `wp` until WakeAll, or, when
  /// `wake_at != kNoTimer`, until the engine's virtual floor reaches
  /// `wake_at` (DES-style jump: an idle fleet skips straight to the next
  /// wake time instead of sleeping real time). `changed` is re-evaluated
  /// under the scheduler lock after registering as a waiter; if it already
  /// returns true the park is skipped. `now` (>= 0) reports the task's
  /// current virtual time for run-queue ordering and floor computation;
  /// pass a negative value to keep the last reported time.
  template <typename Pred>
  static WakeCause Park(WaitPoint* wp, Pred&& changed, SimTime now,
                        SimTime wake_at) {
    using P = std::remove_reference_t<Pred>;
    auto thunk = [](void* p) { return static_cast<bool>((*static_cast<P*>(p))()); };
    return ParkImpl(wp, thunk, &changed, now, wake_at);
  }

  /// Cooperative yield: re-enqueues the calling task at virtual time `now`
  /// and lets the scheduler pick the minimal eligible task.
  static void Yield(SimTime now);

 private:
  friend class WaitPoint;
  friend class ActorGroup;
  friend struct Task;
  friend void BumpProgress();
  friend void IdleWait(uint64_t seen_epoch);
  friend WakeCause IdleWaitUntil(uint64_t seen_epoch, SimTime now,
                                 SimTime wake_at);
  struct Impl;

  static WakeCause ParkImpl(WaitPoint* wp, bool (*changed)(void*), void* arg,
                            SimTime now, SimTime wake_at);

  std::unique_ptr<Impl> impl_;
  uint32_t workers_ = 1;
};

/// Monotone counter bumped on every Notify/Enqueue in the process — the
/// global "something happened" signal poll loops park on.
uint64_t ProgressEpoch();
void BumpProgress();

/// Poll-loop backoff. Capture `seen = ProgressEpoch()` *before* the poll
/// round; when the round made no progress, IdleWait(seen) parks the calling
/// task until the epoch moves (engine mode) or sleeps a 50us slice (thread
/// mode, preserving the historical polling cadence).
void IdleWait(uint64_t seen_epoch);

/// Timed IdleWait: parks until the progress epoch moves past `seen_epoch`
/// or the engine's virtual floor reaches `wake_at` (kNotified vs kTimer).
/// `now` reports the caller's virtual time as in Engine::Park. Thread mode
/// sleeps one 50us slice and reports kNotified iff the epoch moved. Used by
/// bounded poll loops (registry blocking retrieves) whose give-up point is
/// a virtual-time deadline rather than "forever".
WakeCause IdleWaitUntil(uint64_t seen_epoch, SimTime now, SimTime wake_at);

/// Drop-in replacement for the `std::vector<std::thread>` actor-spawning
/// idiom: spawns engine tasks when called from inside a running engine task
/// and real OS threads otherwise, so one workload body serves both modes.
class ActorGroup {
 public:
  ActorGroup() = default;
  ~ActorGroup() { Join(); }
  ActorGroup(const ActorGroup&) = delete;
  ActorGroup& operator=(const ActorGroup&) = delete;

  /// `domain` is the emulated node the actor belongs to (scheduling
  /// affinity); ignored in thread mode.
  void Spawn(uint32_t domain, std::string name, std::function<void()> fn);
  /// Blocks (parks, in engine mode) until every spawned actor finished.
  void Join();

 private:
  friend class Engine;
  std::vector<std::thread> threads_;
  std::atomic<uint32_t> live_{0};
  WaitPoint done_;
  Engine* engine_ = nullptr;
};

}  // namespace dfi::exec

#endif  // DFI_COMMON_EXEC_ENGINE_H_
