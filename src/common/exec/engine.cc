#ifndef _GNU_SOURCE
#define _GNU_SOURCE
#endif

#include "common/exec/engine.h"

#include <pthread.h>
#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <mutex>
#include <set>
#include <utility>

#include "common/logging.h"

// Sanitizer fiber support: without these annotations ASan cannot track the
// fiber stacks across swapcontext and TSan reports every cross-fiber access
// as a race. Both interfaces are feature-detected so plain builds pay
// nothing.
#if defined(__SANITIZE_ADDRESS__)
#define DFI_EXEC_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DFI_EXEC_ASAN 1
#endif
#endif

#if defined(__SANITIZE_THREAD__)
#define DFI_EXEC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DFI_EXEC_TSAN 1
#endif
#endif

#if defined(DFI_EXEC_ASAN)
#include <sanitizer/common_interface_defs.h>
#endif
#if defined(DFI_EXEC_TSAN)
#include <sanitizer/tsan_interface.h>
#endif

namespace dfi::exec {

namespace {

constexpr SimTime kMaxSimTime = std::numeric_limits<SimTime>::max();

/// One switchable execution context: either a worker thread's native stack
/// or a task's fiber stack.
struct FiberCtx {
  ucontext_t uc;
#if defined(DFI_EXEC_ASAN)
  void* asan_fake = nullptr;
  const void* stack_bottom = nullptr;
  size_t stack_size = 0;
#endif
#if defined(DFI_EXEC_TSAN)
  void* tsan_fiber = nullptr;
#endif
};

std::atomic<Engine*> g_active_engine{nullptr};
std::atomic<uint64_t> g_progress_epoch{0};

}  // namespace

struct Task {
  enum class State : uint8_t { kRunnable, kRunning, kParked, kDone };

  Engine::Impl* impl = nullptr;
  uint64_t id = 0;
  uint32_t domain = 0;
  std::string name;
  std::function<void()> fn;

  /// Last virtual time the task reported at a scheduling point. Run queues
  /// are ordered by (vt, id); the engine-wide floor is the minimum over
  /// runnable and running tasks and pending timer wakeups.
  SimTime vt = 0;
  State state = State::kRunnable;

  WaitPoint* wp = nullptr;
  SimTime timed_key = 0;
  bool in_timed = false;
  WakeCause wake_cause = WakeCause::kNotified;
  ActorGroup* group = nullptr;

  FiberCtx ctx;
  void* stack_base = nullptr;  // mmap base; first page is a PROT_NONE guard
  size_t stack_total = 0;
};

namespace {

thread_local Task* g_current_task = nullptr;
thread_local FiberCtx* g_worker_ctx = nullptr;

/// Switches from `from` to `to`. The caller must hold the engine mutex; it
/// stays held across the switch (same OS thread) and the resumed side is
/// responsible for releasing it.
void SwitchContext(FiberCtx* from, FiberCtx* to) {
#if defined(DFI_EXEC_ASAN)
  __sanitizer_start_switch_fiber(&from->asan_fake, to->stack_bottom,
                                 to->stack_size);
#endif
#if defined(DFI_EXEC_TSAN)
  __tsan_switch_to_fiber(to->tsan_fiber, 0);
#endif
  swapcontext(&from->uc, &to->uc);
  // Resumed in `from` again (possibly on a different OS thread / worker).
#if defined(DFI_EXEC_ASAN)
  __sanitizer_finish_switch_fiber(from->asan_fake, nullptr, nullptr);
#endif
}

/// Final switch away from a finished task: its fake stack is released.
void SwitchContextDying(FiberCtx* from, FiberCtx* to) {
#if defined(DFI_EXEC_ASAN)
  __sanitizer_start_switch_fiber(nullptr, to->stack_bottom, to->stack_size);
#endif
#if defined(DFI_EXEC_TSAN)
  __tsan_switch_to_fiber(to->tsan_fiber, 0);
#endif
  swapcontext(&from->uc, &to->uc);
  DFI_CHECK(false) << "finished task resumed";
}

}  // namespace

struct Engine::Impl {
  struct Domain {
    std::vector<Task*> heap;  // min-heap by (vt, id)
  };
  struct RunningSlot {
    Task* task = nullptr;
    SimTime vt = 0;  // vt at dispatch; conservative lower bound while running
  };

  static bool HeapAfter(const Task* a, const Task* b) {
    return a->vt != b->vt ? a->vt > b->vt : a->id > b->id;
  }

  EngineOptions opts;
  Engine* self = nullptr;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Domain> domains_;
  std::multiset<std::pair<SimTime, Task*>> timed_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<RunningSlot> running_;
  uint64_t next_id_ = 0;
  size_t live_ = 0;
  uint32_t rescues_ = 0;
  WaitPoint idle_point_;

  // ---- run-queue plumbing (all under mu_) --------------------------------

  void MakeRunnableLocked(Task* t) {
    t->state = Task::State::kRunnable;
    Domain& d = domains_[t->domain];
    d.heap.push_back(t);
    std::push_heap(d.heap.begin(), d.heap.end(), HeapAfter);
  }

  Task* PopDomainLocked(uint32_t dom) {
    Domain& d = domains_[dom];
    std::pop_heap(d.heap.begin(), d.heap.end(), HeapAfter);
    Task* t = d.heap.back();
    d.heap.pop_back();
    return t;
  }

  SimTime FloorLocked() const {
    SimTime f = kMaxSimTime;
    for (const RunningSlot& slot : running_) {
      if (slot.task != nullptr) f = std::min(f, slot.vt);
    }
    for (const Domain& d : domains_) {
      if (!d.heap.empty()) f = std::min(f, d.heap.front()->vt);
    }
    if (!timed_.empty()) f = std::min(f, timed_.begin()->first);
    return f;
  }

  /// Moves timer-parked tasks whose wake time the floor has reached back to
  /// their run queues (the DES jump: an otherwise idle fleet skips straight
  /// to the next wake time). Returns whether anything was released.
  bool ReleaseTimedLocked(SimTime floor) {
    bool released = false;
    while (!timed_.empty() && timed_.begin()->first <= floor) {
      Task* t = timed_.begin()->second;
      timed_.erase(timed_.begin());
      t->in_timed = false;
      DetachWaiterLocked(t);
      t->wake_cause = WakeCause::kTimer;
      t->vt = t->timed_key;  // the wait ledger says this much time passed
      MakeRunnableLocked(t);
      released = true;
    }
    return released;
  }

  void DetachWaiterLocked(Task* t) {
    DFI_CHECK(t->wp != nullptr) << "parked task without wait point";
    auto& w = t->wp->waiters_;
    auto it = std::find(w.begin(), w.end(), t);
    DFI_CHECK(it != w.end()) << "parked task missing from wait point";
    w.erase(it);
    t->wp->nparked_.fetch_sub(1, std::memory_order_seq_cst);
  }

  void WakeAllOfLocked(WaitPoint* wp) {
    for (Task* t : wp->waiters_) {
      if (t->in_timed) {
        timed_.erase(timed_.find({t->timed_key, t}));
        t->in_timed = false;
      }
      t->wake_cause = WakeCause::kNotified;
      MakeRunnableLocked(t);
    }
    wp->waiters_.clear();
    wp->nparked_.store(0, std::memory_order_seq_cst);
  }

  void WakeAllOf(WaitPoint* wp) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      WakeAllOfLocked(wp);
    }
    cv_.notify_all();
  }

  /// Picks worker `w`'s next task: the minimal task among the worker's own
  /// domains if it lies within the lookahead window, else the globally
  /// minimal task (stealing). Returns nullptr when nothing is eligible.
  Task* PickEligibleLocked(uint32_t w, SimTime floor) {
    const SimTime horizon =
        (floor >= kMaxSimTime - opts.lookahead_ns) ? kMaxSimTime
                                                   : floor + opts.lookahead_ns;
    uint32_t best_dom = UINT32_MAX;
    const Task* best = nullptr;
    for (uint32_t dom = w; dom < domains_.size(); dom += opts.workers) {
      const Domain& d = domains_[dom];
      if (d.heap.empty()) continue;
      const Task* top = d.heap.front();
      if (best == nullptr || HeapAfter(best, top)) {
        best = top;
        best_dom = dom;
      }
    }
    if (best == nullptr || best->vt > horizon) {
      // Own queues drained (or too far ahead): steal the global minimum.
      best = nullptr;
      for (uint32_t dom = 0; dom < domains_.size(); ++dom) {
        const Domain& d = domains_[dom];
        if (d.heap.empty()) continue;
        const Task* top = d.heap.front();
        if (best == nullptr || HeapAfter(best, top)) {
          best = top;
          best_dom = dom;
        }
      }
    }
    if (best == nullptr || best->vt > horizon) return nullptr;
    return PopDomainLocked(best_dom);
  }

  /// Last-resort sweep when every worker is idle yet live tasks remain:
  /// wakes all parked tasks so they re-check their predicates. The park
  /// protocol makes lost wakeups impossible by construction, so this fires
  /// only on bugs — after repeated fruitless sweeps it aborts with the
  /// stalled-task list instead of hanging silently.
  void RescueLocked() {
    bool any_ready = !timed_.empty();
    for (const Domain& d : domains_) any_ready |= !d.heap.empty();
    for (const RunningSlot& s : running_) any_ready |= s.task != nullptr;
    if (any_ready || live_ == 0) return;
    ++rescues_;
    if (rescues_ >= 200) {
      std::string stalled;
      for (const auto& t : tasks_) {
        if (t->state == Task::State::kParked) stalled += " " + t->name;
      }
      DFI_CHECK(false) << "engine stalled: parked tasks never woken:"
                       << stalled;
    }
    for (const auto& t : tasks_) {
      if (t->state != Task::State::kParked) continue;
      if (t->in_timed) {
        timed_.erase(timed_.find({t->timed_key, t.get()}));
        t->in_timed = false;
      }
      DetachWaiterLocked(t.get());
      t->wake_cause = WakeCause::kNotified;
      MakeRunnableLocked(t.get());
    }
  }

  // ---- fiber lifecycle ----------------------------------------------------

  static void Trampoline(unsigned hi, unsigned lo);

  void CreateFiber(Task* t) {
    const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
    const size_t stack = (opts.stack_bytes + page - 1) / page * page;
    t->stack_total = stack + page;
    void* base = mmap(nullptr, t->stack_total, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
    DFI_CHECK(base != MAP_FAILED) << "fiber stack mmap failed";
    DFI_CHECK(mprotect(base, page, PROT_NONE) == 0) << "guard page";
    t->stack_base = base;
    getcontext(&t->ctx.uc);
    t->ctx.uc.uc_stack.ss_sp = static_cast<char*>(base) + page;
    t->ctx.uc.uc_stack.ss_size = stack;
    t->ctx.uc.uc_link = nullptr;
#if defined(DFI_EXEC_ASAN)
    t->ctx.stack_bottom = static_cast<char*>(base) + page;
    t->ctx.stack_size = stack;
#endif
#if defined(DFI_EXEC_TSAN)
    t->ctx.tsan_fiber = __tsan_create_fiber(0);
#endif
    const auto addr = reinterpret_cast<uintptr_t>(t);
    makecontext(&t->ctx.uc, reinterpret_cast<void (*)()>(&Trampoline), 2,
                static_cast<unsigned>(addr >> 32),
                static_cast<unsigned>(addr & 0xffffffffu));
  }

  void ReleaseFiber(Task* t) {
#if defined(DFI_EXEC_TSAN)
    if (t->ctx.tsan_fiber != nullptr) {
      __tsan_destroy_fiber(t->ctx.tsan_fiber);
      t->ctx.tsan_fiber = nullptr;
    }
#endif
    if (t->stack_base != nullptr) {
      munmap(t->stack_base, t->stack_total);
      t->stack_base = nullptr;
    }
    t->fn = nullptr;
  }

  void SpawnLocked(uint32_t domain, std::string name, std::function<void()> fn,
                   ActorGroup* group) {
    if (domain >= domains_.size()) domains_.resize(domain + 1);
    auto task = std::make_unique<Task>();
    Task* t = task.get();
    t->impl = this;
    t->id = next_id_++;
    t->domain = domain;
    t->name = std::move(name);
    t->fn = std::move(fn);
    t->group = group;
    // Children start at the spawner's virtual time so a late spawn does not
    // drag the engine floor back to zero.
    t->vt = (g_current_task != nullptr && g_current_task->impl == this)
                ? g_current_task->vt
                : 0;
    CreateFiber(t);
    ++live_;
    MakeRunnableLocked(t);
    tasks_.push_back(std::move(task));
  }

  /// Called from a finishing task's fiber; never returns.
  [[noreturn]] void FinishCurrentTask(Task* t) {
    mu_.lock();
    t->state = Task::State::kDone;
    --live_;
    rescues_ = 0;
    if (t->group != nullptr &&
        t->group->live_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
      WakeAllOfLocked(&t->group->done_);
    }
    cv_.notify_all();
    SwitchContextDying(&t->ctx, g_worker_ctx);
    __builtin_unreachable();
  }

  void WorkerLoop(uint32_t w) {
    FiberCtx self_ctx;
#if defined(DFI_EXEC_ASAN)
    {
      pthread_attr_t attr;
      if (pthread_getattr_np(pthread_self(), &attr) == 0) {
        void* addr = nullptr;
        size_t size = 0;
        pthread_attr_getstack(&attr, &addr, &size);
        self_ctx.stack_bottom = addr;
        self_ctx.stack_size = size;
        pthread_attr_destroy(&attr);
      }
    }
#endif
#if defined(DFI_EXEC_TSAN)
    self_ctx.tsan_fiber = __tsan_get_current_fiber();
#endif
    g_worker_ctx = &self_ctx;

    mu_.lock();
    for (;;) {
      if (live_ == 0) {
        cv_.notify_all();
        break;
      }
      const SimTime floor = FloorLocked();
      if (ReleaseTimedLocked(floor)) {
        cv_.notify_all();
        continue;
      }
      Task* t = PickEligibleLocked(w, floor);
      if (t == nullptr) {
        std::unique_lock<std::mutex> lk(mu_, std::adopt_lock);
        if (cv_.wait_for(lk, std::chrono::milliseconds(50)) ==
            std::cv_status::timeout) {
          RescueLocked();
        }
        lk.release();  // keep mu_ held for the next iteration
        continue;
      }
      t->state = Task::State::kRunning;
      running_[w] = RunningSlot{t, t->vt};
      g_current_task = t;
      SwitchContext(&self_ctx, &t->ctx);
      // The task parked, yielded or finished; mu_ is held again.
      g_current_task = nullptr;
      running_[w].task = nullptr;
      if (t->state == Task::State::kDone) ReleaseFiber(t);
    }
    mu_.unlock();
    g_worker_ctx = nullptr;
  }
};

void Engine::Impl::Trampoline(unsigned hi, unsigned lo) {
  const auto addr =
      (static_cast<uintptr_t>(hi) << 32) | static_cast<uintptr_t>(lo);
  Task* t = reinterpret_cast<Task*>(addr);
#if defined(DFI_EXEC_ASAN)
  __sanitizer_finish_switch_fiber(t->ctx.asan_fake, nullptr, nullptr);
#endif
  t->impl->mu_.unlock();  // dispatched with the scheduler lock held
  t->fn();
  t->impl->FinishCurrentTask(t);
}

// ---- Engine --------------------------------------------------------------

Engine::Engine(EngineOptions options) : impl_(std::make_unique<Impl>()) {
  impl_->opts = options;
  impl_->self = this;
  workers_ = options.workers != 0 ? options.workers
                                  : std::max(1u,
                                             std::thread::hardware_concurrency());
  impl_->opts.workers = workers_;
  impl_->running_.resize(workers_);
}

Engine::~Engine() {
  for (const auto& t : impl_->tasks_) impl_->ReleaseFiber(t.get());
}

void Engine::Spawn(uint32_t domain, std::string name,
                   std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(impl_->mu_);
  impl_->SpawnLocked(domain, std::move(name), std::move(fn), nullptr);
  impl_->cv_.notify_all();
}

void Engine::Run() {
  Engine* expected = nullptr;
  DFI_CHECK(g_active_engine.compare_exchange_strong(expected, this))
      << "nested Engine::Run";
  std::vector<std::thread> pool;
  pool.reserve(workers_ - 1);
  for (uint32_t w = 1; w < workers_; ++w) {
    pool.emplace_back([this, w] { impl_->WorkerLoop(w); });
  }
  impl_->WorkerLoop(0);
  for (std::thread& th : pool) th.join();
  g_active_engine.store(nullptr);
}

Engine* Engine::Current() {
  return g_current_task != nullptr ? g_current_task->impl->self : nullptr;
}

Engine* Engine::Active() {
  return g_active_engine.load(std::memory_order_seq_cst);
}

WakeCause Engine::ParkImpl(WaitPoint* wp, bool (*changed)(void*), void* arg,
                           SimTime now, SimTime wake_at) {
  Task* t = g_current_task;
  DFI_CHECK(t != nullptr) << "Park called outside an engine task";
  Impl* im = t->impl;
  im->mu_.lock();
  if (now >= 0) t->vt = now;
  // Dekker handshake: publish intent to park before re-checking the
  // condition; notifiers bump their version before reading nparked_.
  wp->nparked_.fetch_add(1, std::memory_order_seq_cst);
  if (changed(arg)) {
    wp->nparked_.fetch_sub(1, std::memory_order_seq_cst);
    im->mu_.unlock();
    return WakeCause::kNotified;
  }
  t->state = Task::State::kParked;
  t->wp = wp;
  wp->waiters_.push_back(t);
  if (wake_at != kNoTimer) {
    t->timed_key = std::max(wake_at, t->vt);
    t->in_timed = true;
    im->timed_.insert({t->timed_key, t});
  }
  im->cv_.notify_all();  // the floor may have moved
  SwitchContext(&t->ctx, g_worker_ctx);
  const WakeCause cause = t->wake_cause;
  t->wp = nullptr;
  im->mu_.unlock();
  return cause;
}

void Engine::Yield(SimTime now) {
  Task* t = g_current_task;
  if (t == nullptr) return;
  Impl* im = t->impl;
  im->mu_.lock();
  if (now >= 0) t->vt = now;
  im->MakeRunnableLocked(t);
  im->cv_.notify_all();
  SwitchContext(&t->ctx, g_worker_ctx);
  im->mu_.unlock();
}

// ---- WaitPoint -----------------------------------------------------------

void WaitPoint::WakeAll() {
  if (nparked_.load(std::memory_order_seq_cst) == 0) return;
  Engine* e = Engine::Active();
  if (e == nullptr) return;
  e->impl_->WakeAllOf(this);
}

// ---- progress epoch ------------------------------------------------------

uint64_t ProgressEpoch() {
  return g_progress_epoch.load(std::memory_order_seq_cst);
}

void BumpProgress() {
  g_progress_epoch.fetch_add(1, std::memory_order_seq_cst);
  Engine* e = Engine::Active();
  if (e != nullptr) e->impl_->idle_point_.WakeAll();
}

void IdleWait(uint64_t seen_epoch) {
  Engine* e = Engine::Current();
  if (e == nullptr) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    return;
  }
  Engine::Park(&e->impl_->idle_point_,
               [seen_epoch] { return ProgressEpoch() != seen_epoch; },
               /*now=*/-1, Engine::kNoTimer);
}

WakeCause IdleWaitUntil(uint64_t seen_epoch, SimTime now, SimTime wake_at) {
  Engine* e = Engine::Current();
  if (e == nullptr) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    return ProgressEpoch() != seen_epoch ? WakeCause::kNotified
                                         : WakeCause::kTimer;
  }
  return Engine::Park(&e->impl_->idle_point_,
                      [seen_epoch] { return ProgressEpoch() != seen_epoch; },
                      now, wake_at);
}

// ---- ActorGroup ----------------------------------------------------------

void ActorGroup::Spawn(uint32_t domain, std::string name,
                       std::function<void()> fn) {
  Engine* e = Engine::Current();
  if (e == nullptr) {
    threads_.emplace_back(std::move(fn));
    return;
  }
  engine_ = e;
  live_.fetch_add(1, std::memory_order_seq_cst);
  std::lock_guard<std::mutex> lock(e->impl_->mu_);
  e->impl_->SpawnLocked(domain, std::move(name), std::move(fn), this);
  e->impl_->cv_.notify_all();
}

void ActorGroup::Join() {
  if (engine_ != nullptr) {
    while (live_.load(std::memory_order_seq_cst) != 0) {
      Engine::Park(&done_,
                   [this] {
                     return live_.load(std::memory_order_seq_cst) == 0;
                   },
                   /*now=*/-1, Engine::kNoTimer);
    }
    engine_ = nullptr;
  }
  for (std::thread& th : threads_) th.join();
  threads_.clear();
}

}  // namespace dfi::exec
