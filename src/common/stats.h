#ifndef DFI_COMMON_STATS_H_
#define DFI_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dfi {

/// Accumulates samples (e.g. request latencies in virtual ns) and reports
/// order statistics. Not thread-safe; aggregate per-thread instances with
/// Merge().
class LatencyRecorder {
 public:
  LatencyRecorder() = default;

  void Record(int64_t sample) { samples_.push_back(sample); }
  void Merge(const LatencyRecorder& other);
  void Reserve(size_t n) { samples_.reserve(n); }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Quantile in [0, 1]; e.g. 0.5 = median, 0.95 = p95. Sorts lazily.
  int64_t Quantile(double q);
  int64_t Median() { return Quantile(0.5); }
  int64_t Min();
  int64_t Max();
  double Mean() const;

  void Clear() { samples_.clear(); sorted_ = false; }

 private:
  void EnsureSorted();

  std::vector<int64_t> samples_;
  bool sorted_ = false;
};

/// Simple online mean/min/max accumulator for throughput-style metrics.
class RunningStat {
 public:
  void Add(double v);
  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0 : sum_ / count_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace dfi

#endif  // DFI_COMMON_STATS_H_
