#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace dfi {

Xorshift128Plus::Xorshift128Plus(uint64_t seed) {
  // SplitMix64 expansion of the seed avoids weak all-zero states.
  auto splitmix = [&seed]() {
    seed += 0x9e3779b97f4a7c15ull;
    uint64_t z = seed;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  state_[0] = splitmix();
  state_[1] = splitmix();
}

uint64_t Xorshift128Plus::Next() {
  uint64_t x = state_[0];
  const uint64_t y = state_[1];
  state_[0] = y;
  x ^= x << 23;
  state_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
  return state_[1] + y;
}

uint64_t Xorshift128Plus::NextBelow(uint64_t bound) {
  DFI_DCHECK(bound > 0);
  return Next() % bound;
}

double Xorshift128Plus::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Xorshift128Plus::NextBool(double p) { return NextDouble() < p; }

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  DFI_CHECK_GT(n, 0u);
  zetan_ = Zeta(n, theta);
  const double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

double ZipfGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfGenerator::Next() {
  if (theta_ == 0.0) return rng_.NextBelow(n_);
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace dfi
