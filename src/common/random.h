#ifndef DFI_COMMON_RANDOM_H_
#define DFI_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace dfi {

/// Stateless 64-bit mixer (SplitMix64 finalizer). Hashing a (seed, key)
/// pair gives a decision stream that depends only on the key — independent
/// of thread interleaving — which is what deterministic fault injection
/// needs (see net/fault_plan.h).
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Small, fast, seedable PRNG (xorshift128+). Used for workload generation,
/// backoff jitter and loss injection; deterministic for a given seed so
/// benchmark results are reproducible.
class Xorshift128Plus {
 public:
  explicit Xorshift128Plus(uint64_t seed = 0x9e3779b97f4a7c15ull);

  uint64_t Next();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool NextBool(double p);

 private:
  uint64_t state_[2];
};

/// Zipf-distributed generator over [0, n) with skew theta (theta = 0 is
/// uniform). Uses the standard YCSB/Gray et al. rejection-free method with
/// precomputed zeta constants.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42);

  uint64_t Next();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Xorshift128Plus rng_;
};

}  // namespace dfi

#endif  // DFI_COMMON_RANDOM_H_
