#ifndef DFI_COMMON_SIM_TIME_H_
#define DFI_COMMON_SIM_TIME_H_

#include <atomic>
#include <cassert>
#include <cstdint>

namespace dfi {

/// Virtual time in nanoseconds. All performance accounting in the emulated
/// network and in DFI's cost model uses virtual time, which makes benchmark
/// results deterministic and independent of host core count (see DESIGN.md
/// section 5).
using SimTime = int64_t;

/// Per-thread virtual clock. Every flow source/target thread (and every
/// mini-MPI rank) owns one. The owning thread advances it by CPU cost-model
/// charges; cross-thread causality joins it with timestamps carried on
/// segments/footers via AdvanceTo().
///
/// Thread-safety: Advance/AdvanceTo are called by the owning thread only;
/// now() may be read concurrently by other threads (e.g. the link scheduler
/// or result reporting).
class VirtualClock {
 public:
  VirtualClock() = default;
  explicit VirtualClock(SimTime start) : now_(start) {}

  VirtualClock(const VirtualClock&) = delete;
  VirtualClock& operator=(const VirtualClock&) = delete;

  SimTime now() const { return now_.load(std::memory_order_acquire); }

  /// Charges `delta` ns of virtual CPU/wait time. Charges are non-negative
  /// by contract — a negative delta would let virtual time run backwards
  /// and silently wrap the deterministic timeline. Debug builds assert;
  /// release builds clamp to "no charge".
  void Advance(SimTime delta) {
    assert(delta >= 0 && "VirtualClock::Advance with negative delta");
    if (delta < 0) delta = 0;
    now_.store(now_.load(std::memory_order_relaxed) + delta,
               std::memory_order_release);
  }

  /// Joins with an external event: clock = max(clock, t). Used when the
  /// thread consumes data that only became available at virtual time `t`.
  void AdvanceTo(SimTime t) {
    if (t > now_.load(std::memory_order_relaxed)) {
      now_.store(t, std::memory_order_release);
    }
  }

  void Reset(SimTime t = 0) { now_.store(t, std::memory_order_release); }

 private:
  std::atomic<SimTime> now_{0};
};

}  // namespace dfi

#endif  // DFI_COMMON_SIM_TIME_H_
