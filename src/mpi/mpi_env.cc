#include "mpi/mpi_env.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "common/logging.h"

namespace dfi::mpi {

MpiEnv::MpiEnv(net::Fabric* fabric, std::vector<net::NodeId> rank_nodes,
               ThreadMode mode, uint32_t threads_per_rank)
    : fabric_(fabric),
      rank_nodes_(std::move(rank_nodes)),
      mode_(mode),
      threads_per_rank_(threads_per_rank) {
  DFI_CHECK(!rank_nodes_.empty());
  DFI_CHECK_GE(threads_per_rank_, 1u);
  latches_.reserve(rank_nodes_.size());
  for (size_t r = 0; r < rank_nodes_.size(); ++r) {
    // 1 B/ns so reserved "bytes" equal nanoseconds of latch hold.
    latches_.push_back(std::make_unique<net::LinkScheduler>(
        "mpi-latch:" + std::to_string(r), 1.0));
  }
  a2a_send_.resize(rank_nodes_.size(), nullptr);
  a2a_recv_.resize(rank_nodes_.size(), nullptr);
}

MpiEnv::~MpiEnv() = default;

void MpiEnv::ChargeCallOverhead(int rank, VirtualClock* clock) {
  const net::SimConfig& cfg = config();
  clock->Advance(cfg.mpi_msg_overhead_ns);
  if (mode_ == ThreadMode::kMultiple && threads_per_rank_ > 1) {
    // Every MPI call serializes on the rank's global latch; the hold time
    // grows with contention (cache-line bouncing), which is why
    // multi-threaded MPI *degrades* with more threads (Figure 10b).
    const SimTime hold =
        cfg.mpi_latch_hold_ns +
        cfg.mpi_latch_bounce_ns * static_cast<SimTime>(threads_per_rank_ - 1);
    const net::TransferWindow w = latches_[rank]->Reserve(
        clock->now(), static_cast<uint64_t>(hold));
    clock->AdvanceTo(w.end);
  }
  if (threads_per_rank_ == 1 && mode_ == ThreadMode::kSingle &&
      rank_nodes_.size() > 1) {
    // Multi-process mode on one node pays the shared-memory copy toll when
    // exchanging with co-located processes; modeled as a flat per-call
    // extra (only charged when several ranks share a node).
    net::NodeId node = rank_nodes_[rank];
    for (size_t r = 0; r < rank_nodes_.size(); ++r) {
      if (static_cast<int>(r) != rank && rank_nodes_[r] == node) {
        clock->Advance(cfg.mpi_shm_copy_extra_ns);
        break;
      }
    }
  }
}

MpiEnv::Mailbox& MpiEnv::mailbox(int src, int dst, int tag) {
  std::lock_guard<std::mutex> lock(mailboxes_mu_);
  auto& slot = mailboxes_[{src, dst, tag}];
  if (!slot) slot = std::make_unique<Mailbox>();
  return *slot;
}

Status MpiEnv::Send(int src_rank, int dst_rank, int tag, const void* buf,
                    size_t bytes, VirtualClock* clock) {
  if (src_rank < 0 || src_rank >= size() || dst_rank < 0 ||
      dst_rank >= size()) {
    return Status::OutOfRange("rank out of range");
  }
  ChargeCallOverhead(src_rank, clock);
  const net::SimConfig& cfg = config();
  Mailbox& mb = mailbox(src_rank, dst_rank, tag);

  if (bytes <= cfg.mpi_eager_threshold) {
    // Eager protocol: payload copied into MPI internal buffers and shipped
    // immediately; the sender returns without waiting for the receiver.
    clock->Advance(static_cast<SimTime>(
        std::llround(bytes * cfg.tuple_copy_ns_per_byte)));
    const net::TransferWindow egress =
        fabric_->node(rank_nodes_[src_rank])
            .egress()
            .Reserve(clock->now() + cfg.nic_process_ns, bytes);
    const net::TransferWindow ingress =
        fabric_->node(rank_nodes_[dst_rank])
            .ingress()
            .Reserve(egress.end + cfg.propagation_ns, bytes);
    auto msg = std::make_shared<Message>();
    msg->data.assign(static_cast<const uint8_t*>(buf),
                     static_cast<const uint8_t*>(buf) + bytes);
    msg->arrival = ingress.end;
    msg->rendezvous = false;
    msg->bytes = bytes;
    msg->sender_post = clock->now();
    {
      std::lock_guard<std::mutex> lock(mb.mu);
      mb.messages.push_back(std::move(msg));
    }
    mb.cv.notify_all();
    mb.wait_point.WakeAll();
    exec::BumpProgress();
    return Status::OK();
  }

  // Rendezvous protocol: announce, then block until the receiver matched
  // and the payload left the sender's buffer.
  auto msg = std::make_shared<Message>();
  msg->rendezvous = true;
  msg->src_buf = buf;
  msg->bytes = bytes;
  msg->sender_post = clock->now();
  {
    std::lock_guard<std::mutex> lock(mb.mu);
    mb.messages.push_back(msg);
  }
  mb.cv.notify_all();
  mb.wait_point.WakeAll();
  exec::BumpProgress();
  if (exec::Engine::InTask()) {
    // Engine task: park the fiber until the receiver matches. The predicate
    // is evaluated after the park intent is published, so a match racing
    // with the park is never lost.
    auto matched = [&] {
      std::lock_guard<std::mutex> lock(mb.mu);
      return msg->matched;
    };
    while (!matched()) {
      exec::Engine::Park(&mb.wait_point, matched, clock->now(),
                         exec::Engine::kNoTimer);
    }
  } else {
    std::unique_lock<std::mutex> lock(mb.mu);
    mb.cv.wait(lock, [&] { return msg->matched; });
  }
  clock->AdvanceTo(msg->sender_done);
  return Status::OK();
}

Status MpiEnv::Recv(int dst_rank, int src_rank, int tag, void* buf,
                    size_t bytes, VirtualClock* clock) {
  if (src_rank < 0 || src_rank >= size() || dst_rank < 0 ||
      dst_rank >= size()) {
    return Status::OutOfRange("rank out of range");
  }
  ChargeCallOverhead(dst_rank, clock);
  const net::SimConfig& cfg = config();
  Mailbox& mb = mailbox(src_rank, dst_rank, tag);

  std::shared_ptr<Message> msg;
  if (exec::Engine::InTask()) {
    auto has_message = [&] {
      std::lock_guard<std::mutex> lock(mb.mu);
      return !mb.messages.empty();
    };
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mb.mu);
        if (!mb.messages.empty()) {
          msg = mb.messages.front();
          mb.messages.pop_front();
          break;
        }
      }
      exec::Engine::Park(&mb.wait_point, has_message, clock->now(),
                         exec::Engine::kNoTimer);
    }
  } else {
    std::unique_lock<std::mutex> lock(mb.mu);
    mb.cv.wait(lock, [&] { return !mb.messages.empty(); });
    msg = mb.messages.front();
    mb.messages.pop_front();
  }
  if (msg->bytes != bytes) {
    return Status::InvalidArgument(
        "receive size mismatch: posted " + std::to_string(bytes) +
        ", message has " + std::to_string(msg->bytes));
  }

  if (!msg->rendezvous) {
    std::memcpy(buf, msg->data.data(), bytes);
    clock->AdvanceTo(msg->arrival);
    clock->Advance(static_cast<SimTime>(
        std::llround(bytes * cfg.tuple_copy_ns_per_byte)));
    return Status::OK();
  }

  // Rendezvous: RTS/CTS handshake, then the pipelined bulk transfer.
  const SimTime handshake_done =
      std::max(msg->sender_post, clock->now()) + 2 * cfg.propagation_ns;
  const net::TransferWindow egress =
      fabric_->node(rank_nodes_[src_rank])
          .egress()
          .Reserve(handshake_done + cfg.nic_process_ns, bytes);
  const net::TransferWindow ingress =
      fabric_->node(rank_nodes_[dst_rank])
          .ingress()
          .Reserve(egress.end + cfg.propagation_ns, bytes);
  std::memcpy(buf, msg->src_buf, bytes);
  {
    std::lock_guard<std::mutex> lock(mb.mu);
    msg->sender_done = egress.end;
    msg->matched = true;
  }
  mb.cv.notify_all();
  mb.wait_point.WakeAll();
  exec::BumpProgress();
  clock->AdvanceTo(ingress.end);
  return Status::OK();
}

SimTime MpiEnv::BarrierJoin(BarrierState& state, VirtualClock* clock) {
  std::unique_lock<std::mutex> lock(state.mu);
  state.max_time = std::max(state.max_time, clock->now());
  if (++state.waiting == rank_nodes_.size()) {
    state.release_time = state.max_time;
    state.max_time = 0;
    state.waiting = 0;
    ++state.generation;
    lock.unlock();
    state.cv.notify_all();
    state.wait_point.WakeAll();
    exec::BumpProgress();
    clock->AdvanceTo(state.release_time);
    return state.release_time;
  }
  const uint64_t gen = state.generation;
  if (exec::Engine::InTask()) {
    lock.unlock();
    auto released = [&] {
      std::lock_guard<std::mutex> relock(state.mu);
      return state.generation != gen;
    };
    while (!released()) {
      exec::Engine::Park(&state.wait_point, released, clock->now(),
                         exec::Engine::kNoTimer);
    }
    lock.lock();
  } else {
    state.cv.wait(lock, [&] { return state.generation != gen; });
  }
  const SimTime release = state.release_time;
  lock.unlock();
  clock->AdvanceTo(release);
  return release;
}

Status MpiEnv::Barrier(int rank, VirtualClock* clock) {
  ChargeCallOverhead(rank, clock);
  BarrierJoin(barrier_, clock);
  return Status::OK();
}

Status MpiEnv::Alltoall(int rank, const void* sendbuf, void* recvbuf,
                        size_t bytes_per_rank, VirtualClock* clock) {
  ChargeCallOverhead(rank, clock);
  const net::SimConfig& cfg = config();
  const int n = size();
  a2a_send_[rank] = sendbuf;
  a2a_recv_[rank] = recvbuf;
  // Bulk synchronous: no byte moves before every rank arrived (this is the
  // blocking behavior that makes collectives straggler-sensitive).
  const SimTime t0 = BarrierJoin(alltoall_enter_, clock);

  SimTime done = t0;
  for (int q = 0; q < n; ++q) {
    const uint8_t* src =
        static_cast<const uint8_t*>(a2a_send_[rank]) + q * bytes_per_rank;
    uint8_t* dst = static_cast<uint8_t*>(a2a_recv_[q]) + rank * bytes_per_rank;
    if (q == rank) {
      std::memcpy(dst, src, bytes_per_rank);
      done = std::max(done, t0 + static_cast<SimTime>(std::llround(
                                bytes_per_rank * cfg.tuple_copy_ns_per_byte)));
      continue;
    }
    const net::TransferWindow egress =
        fabric_->node(rank_nodes_[rank]).egress().Reserve(t0, bytes_per_rank);
    const net::TransferWindow ingress =
        fabric_->node(rank_nodes_[q])
            .ingress()
            .Reserve(egress.end + cfg.propagation_ns, bytes_per_rank);
    std::memcpy(dst, src, bytes_per_rank);
    done = std::max(done, ingress.end);
  }
  clock->AdvanceTo(done);
  // The collective returns together on all ranks.
  BarrierJoin(alltoall_exit_, clock);
  return Status::OK();
}

StatusOr<MpiWindow*> MpiEnv::CreateWindow(size_t bytes) {
  std::lock_guard<std::mutex> lock(windows_mu_);
  windows_.push_back(std::make_unique<MpiWindow>(this, bytes));
  return windows_.back().get();
}

Status MpiEnv::Put(int src_rank, const void* buf, size_t bytes, int dst_rank,
                   uint64_t remote_offset, MpiWindow* window,
                   VirtualClock* clock) {
  if (remote_offset + bytes > window->bytes()) {
    return Status::OutOfRange("put beyond window");
  }
  ChargeCallOverhead(src_rank, clock);
  const net::SimConfig& cfg = config();
  const net::TransferWindow egress =
      fabric_->node(rank_nodes_[src_rank])
          .egress()
          .Reserve(clock->now() + cfg.nic_process_ns, bytes);
  const net::TransferWindow ingress =
      fabric_->node(rank_nodes_[dst_rank])
          .ingress()
          .Reserve(egress.end + cfg.propagation_ns, bytes);
  std::memcpy(window->local(dst_rank) + remote_offset, buf, bytes);
  auto& arrival = *window->last_put_arrival_[dst_rank];
  SimTime prev = arrival.load(std::memory_order_relaxed);
  while (prev < ingress.end &&
         !arrival.compare_exchange_weak(prev, ingress.end,
                                        std::memory_order_acq_rel)) {
  }
  return Status::OK();
}

Status MpiEnv::Fence(int rank, MpiWindow* window, VirtualClock* clock) {
  ChargeCallOverhead(rank, clock);
  // All ranks enter the fence (ensures every put was posted), then every
  // rank observes the completion of all puts cluster-wide.
  BarrierJoin(window->fence_barrier_, clock);
  SimTime max_arrival = 0;
  for (size_t r = 0; r < rank_nodes_.size(); ++r) {
    max_arrival = std::max(
        max_arrival,
        window->last_put_arrival_[r]->load(std::memory_order_acquire));
  }
  clock->AdvanceTo(max_arrival);
  BarrierJoin(window->fence_barrier_, clock);
  return Status::OK();
}

MpiWindow::MpiWindow(MpiEnv* env, size_t bytes) : env_(env), bytes_(bytes) {
  const size_t n = env_->rank_nodes_.size();
  memory_.reserve(n);
  last_put_arrival_.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    memory_.push_back(std::make_unique<uint8_t[]>(bytes));
    std::memset(memory_.back().get(), 0, bytes);
    last_put_arrival_.push_back(std::make_unique<std::atomic<SimTime>>(0));
    env_->fabric_->node(env_->rank_nodes_[r]).AddRegisteredBytes(bytes);
  }
}

MpiWindow::~MpiWindow() {
  for (size_t r = 0; r < memory_.size(); ++r) {
    env_->fabric_->node(env_->rank_nodes_[r]).SubRegisteredBytes(bytes_);
  }
}

}  // namespace dfi::mpi
