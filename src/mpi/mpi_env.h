#ifndef DFI_MPI_MPI_ENV_H_
#define DFI_MPI_MPI_ENV_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/exec/engine.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "net/fabric.h"
#include "net/link.h"

namespace dfi::mpi {

/// Thread support level, mirroring MPI_Init_thread.
enum class ThreadMode : uint8_t {
  /// One thread per rank calls MPI (MPI_THREAD_SINGLE).
  kSingle,
  /// Multiple threads per rank may call MPI concurrently
  /// (MPI_THREAD_MULTIPLE). All calls serialize on a per-rank latch whose
  /// hold time grows with the number of contending threads — the behavior
  /// the paper measures in Figure 10b.
  kMultiple,
};

class MpiWindow;

/// A mini-MPI over the virtual-time fabric. It implements the *semantics*
/// the paper's Experiment 2 measures — blocking Send/Recv with eager and
/// rendezvous protocols, bulk-synchronous collectives (Alltoall, Barrier),
/// one-sided Put with fence synchronization, process-centric ranks and a
/// contended global latch in MPI_THREAD_MULTIPLE mode — not the full MPI
/// standard (see DESIGN.md's substitution table).
///
/// Usage: construct with one fabric node per rank; drive each rank from its
/// own thread, passing that thread's VirtualClock to every call.
class MpiEnv {
 public:
  MpiEnv(net::Fabric* fabric, std::vector<net::NodeId> rank_nodes,
         ThreadMode mode = ThreadMode::kSingle, uint32_t threads_per_rank = 1);
  ~MpiEnv();

  MpiEnv(const MpiEnv&) = delete;
  MpiEnv& operator=(const MpiEnv&) = delete;

  int size() const { return static_cast<int>(rank_nodes_.size()); }
  ThreadMode mode() const { return mode_; }
  net::Fabric& fabric() { return *fabric_; }
  const net::SimConfig& config() const { return fabric_->config(); }

  // ---- Point-to-point ----------------------------------------------------
  /// Blocking standard-mode send. Eager below the configured threshold
  /// (buffer copied, returns immediately in virtual time); rendezvous above
  /// (blocks until the matching receive is posted).
  Status Send(int src_rank, int dst_rank, int tag, const void* buf,
              size_t bytes, VirtualClock* clock);

  /// Blocking receive of exactly `bytes` from `src_rank` with `tag`.
  Status Recv(int dst_rank, int src_rank, int tag, void* buf, size_t bytes,
              VirtualClock* clock);

  // ---- Collectives (bulk synchronous) -------------------------------------
  /// Every rank contributes `bytes_per_rank * size()` send bytes and
  /// receives the same; slice r of rank q's send buffer lands at slice q of
  /// rank r's recv buffer. Blocking for all ranks; completion joins all
  /// clocks (the straggler behavior of Figures 11/12).
  Status Alltoall(int rank, const void* sendbuf, void* recvbuf,
                  size_t bytes_per_rank, VirtualClock* clock);

  /// Joins all ranks' clocks to the barrier's completion time.
  Status Barrier(int rank, VirtualClock* clock);

  // ---- One-sided ----------------------------------------------------------
  /// Collective window creation exposing `bytes` of memory on every rank.
  /// Returns the window id.
  StatusOr<MpiWindow*> CreateWindow(size_t bytes);

  /// Non-blocking one-sided put into `dst_rank`'s window memory.
  Status Put(int src_rank, const void* buf, size_t bytes, int dst_rank,
             uint64_t remote_offset, MpiWindow* window, VirtualClock* clock);

  /// Window fence: barrier + completion of all outstanding puts.
  Status Fence(int rank, MpiWindow* window, VirtualClock* clock);

  /// Charges the per-call MPI software overhead, including the latch in
  /// MPI_THREAD_MULTIPLE mode. Public so benchmarks can model extra calls.
  void ChargeCallOverhead(int rank, VirtualClock* clock);

 private:
  friend class MpiWindow;

  struct Message {
    std::vector<uint8_t> data;
    SimTime arrival;      // virtual time the payload is fully received
    bool rendezvous;      // sender blocked, waiting for the receiver
    const void* src_buf;  // rendezvous: sender's buffer (copied at match)
    size_t bytes;
    SimTime sender_post;  // sender's clock at post
    bool matched = false;
    SimTime sender_done = 0;  // rendezvous: when the sender may return
  };

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    exec::WaitPoint wait_point;  // parks engine tasks; cv parks threads
    std::deque<std::shared_ptr<Message>> messages;
  };

  /// Generation-counted reusable barrier over all ranks with clock join.
  struct BarrierState {
    std::mutex mu;
    std::condition_variable cv;
    exec::WaitPoint wait_point;  // parks engine tasks; cv parks threads
    uint32_t waiting = 0;
    uint64_t generation = 0;
    SimTime max_time = 0;
    SimTime release_time = 0;
  };

  Mailbox& mailbox(int src, int dst, int tag);
  /// Barrier over all ranks; returns the joined (max) virtual time.
  SimTime BarrierJoin(BarrierState& state, VirtualClock* clock);

  net::Fabric* const fabric_;
  const std::vector<net::NodeId> rank_nodes_;
  const ThreadMode mode_;
  const uint32_t threads_per_rank_;

  std::mutex mailboxes_mu_;
  std::map<std::tuple<int, int, int>, std::unique_ptr<Mailbox>> mailboxes_;

  /// Per-rank MPI latch for MPI_THREAD_MULTIPLE (serializes calls in
  /// virtual time; hold time grows with contending threads).
  std::vector<std::unique_ptr<net::LinkScheduler>> latches_;

  BarrierState barrier_;
  BarrierState alltoall_enter_;
  BarrierState alltoall_exit_;
  std::vector<std::unique_ptr<MpiWindow>> windows_;
  std::mutex windows_mu_;

  // Alltoall exchange area: per-rank buffer pointers for the current round.
  std::vector<const void*> a2a_send_;
  std::vector<void*> a2a_recv_;
};

/// One-sided communication window (MPI_Win): `bytes` of directly writable
/// memory on each rank. Memory counts toward each node's registered bytes.
class MpiWindow {
 public:
  MpiWindow(MpiEnv* env, size_t bytes);
  ~MpiWindow();

  uint8_t* local(int rank) { return memory_[rank].get(); }
  size_t bytes() const { return bytes_; }

 private:
  friend class MpiEnv;
  MpiEnv* const env_;
  const size_t bytes_;
  std::vector<std::unique_ptr<uint8_t[]>> memory_;
  std::vector<std::unique_ptr<std::atomic<SimTime>>> last_put_arrival_;
  MpiEnv::BarrierState fence_barrier_;
};

}  // namespace dfi::mpi

#endif  // DFI_MPI_MPI_ENV_H_
